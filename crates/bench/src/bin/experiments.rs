//! The experiments harness: regenerates every table/figure of the
//! paper's evaluation (Section 7) plus the protocol and ablation
//! experiments indexed in DESIGN.md, printing paper-style rows and a
//! machine-readable JSON dump (`experiments.json` in the working
//! directory).
//!
//! Run with: `cargo run --release -p pti-bench --bin experiments`

use std::time::Instant;

use pti_bench::{conformance_fixture, invocation_fixture, run_protocol, serialization_fixture};
use pti_conformance::{ConformanceChecker, ConformanceConfig, NameMatcher};
use pti_core::prelude::*;
use pti_core::samples;
use pti_proxy::invoke_direct;
use pti_serialize::{
    description_from_string, description_to_string, from_binary, from_soap_string, to_binary,
    to_soap_string,
};
/// Version of the `BENCH_*.json` contract the CI gates parse. Bump it
/// whenever a gated field is renamed, removed, or changes meaning, and
/// update `.github/workflows/ci.yml` in the same change.
const BENCH_SCHEMA_VERSION: u32 = 1;

/// Stamps the shared schema version as the first field of a BENCH dump,
/// so every emitter carries it without repeating the literal.
fn stamp_schema(json: &str) -> String {
    json.replacen(
        "{\n",
        &format!("{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"),
        1,
    )
}

struct Row {
    id: String,
    name: String,
    paper: String,
    measured: String,
    shape_holds: bool,
}

/// Minimal JSON string escaping (the rows carry free-form measurement
/// text, including quotes and the occasional Greek letter).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable dump, written without a serializer dependency.
fn rows_to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\n    \"id\": \"{}\",\n    \"name\": \"{}\",\n    \"paper\": \"{}\",\n    \
             \"measured\": \"{}\",\n    \"shape_holds\": {}\n  }}{}\n",
            json_escape(&r.id),
            json_escape(&r.name),
            json_escape(&r.paper),
            json_escape(&r.measured),
            r.shape_holds,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push(']');
    out
}

struct Report {
    rows: Vec<Row>,
}

impl Report {
    fn push(&mut self, id: &str, name: &str, paper: &str, measured: String, holds: bool) {
        println!(
            "  [{}] {:<52} paper: {:<28} measured: {:<34} {}",
            id,
            name,
            paper,
            measured,
            if holds { "OK" } else { "SHAPE MISMATCH" }
        );
        self.rows.push(Row {
            id: id.to_string(),
            name: name.to_string(),
            paper: paper.to_string(),
            measured,
            shape_holds: holds,
        });
    }
}

/// Microseconds per operation over `reps` timed repetitions of `per_rep`
/// operations each (the paper's "100 repetitions of N operations" shape).
fn time_us_per_op(reps: usize, per_rep: usize, mut f: impl FnMut()) -> f64 {
    // Warmup.
    for _ in 0..per_rep.min(1000) {
        f();
    }
    let start = Instant::now();
    for _ in 0..reps {
        for _ in 0..per_rep {
            f();
        }
    }
    start.elapsed().as_secs_f64() * 1e6 / (reps * per_rep) as f64
}

fn e1_invocation(report: &mut Report) {
    println!("\nE1  §7.1 — invocation time (direct vs dynamic proxy)");
    // "Direct" in the paper is a compiled call; the analogue here is a
    // method body bound once and called repeatedly.
    let mut f = invocation_fixture();
    let bound = std::sync::Arc::clone(&f.bound_get);
    let recv = Value::Obj(f.handle);
    let direct_us = time_us_per_op(100, 10_000, || {
        let _ = bound(&mut f.runtime, recv.clone(), &[]).unwrap();
    });
    // Per-call dynamic dispatch through the runtime (what .NET's DII-ish
    // late binding would cost) — an intermediate point.
    let mut f = invocation_fixture();
    let dispatch_us = time_us_per_op(100, 10_000, || {
        let _ = invoke_direct(&mut f.runtime, f.handle, "getPersonName", &[]).unwrap();
    });
    let mut f = invocation_fixture();
    let proxy_us = time_us_per_op(100, 10_000, || {
        let _ = f.proxy.invoke(&mut f.runtime, "getName", &[]).unwrap();
    });
    let ratio = proxy_us / direct_us;
    report.push(
        "E1",
        "direct invocation (bound call site)",
        "0.142 µs",
        format!("{direct_us:.3} µs"),
        true,
    );
    report.push(
        "E1",
        "runtime dynamic dispatch (unproxied)",
        "— (substrate detail)",
        format!("{dispatch_us:.3} µs"),
        true,
    );
    report.push(
        "E1",
        "dynamic-proxy invocation",
        "30 µs (~211x direct)",
        format!("{proxy_us:.3} µs ({ratio:.1}x direct)"),
        ratio > 1.5 && proxy_us > dispatch_us,
    );
}

fn e2_typedesc(report: &mut Report) {
    println!("\nE2  §7.2 — type description create+serialize / deserialize");
    let def = samples::person_vendor_a();
    let ser_us = time_us_per_op(100, 1000, || {
        let d = TypeDescription::from_def(&def);
        let _ = description_to_string(&d);
    });
    let xml = description_to_string(&TypeDescription::from_def(&def));
    let de_us = time_us_per_op(100, 1000, || {
        let _ = description_from_string(&xml).unwrap();
    });
    report.push(
        "E2",
        "create+serialize Person description",
        "6.14 µs/op",
        format!("{ser_us:.3} µs/op"),
        true,
    );
    report.push(
        "E2",
        "deserialize Person description",
        "2.34 µs/op (serialize > deserialize)",
        format!("{de_us:.3} µs/op (ratio ser/de = {:.2})", ser_us / de_us),
        ser_us > de_us,
    );
}

fn e3_object_serde(report: &mut Report) {
    println!("\nE3  §7.3 — object (SOAP) serialize / deserialize");
    let f = serialization_fixture();
    let ser_us = time_us_per_op(100, 1000, || {
        let _ = to_soap_string(&f.runtime, &f.person).unwrap();
    });
    let mut f = serialization_fixture();
    let soap = to_soap_string(&f.runtime, &f.person).unwrap();
    let de_us = time_us_per_op(100, 1000, || {
        // Steady state: release the materialized object after use.
        let v = from_soap_string(&mut f.runtime, &soap).unwrap();
        if let Ok(h) = v.as_obj() {
            let _ = f.runtime.heap.free(h);
        }
    });
    report.push(
        "E3",
        "SOAP serialize Person instance",
        "16.68 µs/op",
        format!("{ser_us:.3} µs/op"),
        true,
    );
    report.push(
        "E3",
        "SOAP deserialize Person instance",
        "1.32 µs/op (serialize >> deserialize)",
        format!("{de_us:.3} µs/op (ratio ser/de = {:.2})", ser_us / de_us),
        ser_us > de_us,
    );
    // Binary comparison (the paper's alternative formatter).
    let f = serialization_fixture();
    let bser_us = time_us_per_op(100, 1000, || {
        let _ = to_binary(&f.runtime, &f.person).unwrap();
    });
    let mut f = serialization_fixture();
    let bin = to_binary(&f.runtime, &f.person).unwrap();
    let bde_us = time_us_per_op(100, 1000, || {
        let v = from_binary(&mut f.runtime, &bin).unwrap();
        if let Ok(h) = v.as_obj() {
            let _ = f.runtime.heap.free(h);
        }
    });
    report.push(
        "E3",
        "binary serialize/deserialize Person",
        "binary faster than SOAP",
        format!("{bser_us:.3} / {bde_us:.3} µs/op"),
        bser_us < ser_us,
    );
}

fn e4_conformance(report: &mut Report) {
    println!("\nE4  §7.4 — implicit structural conformance check");
    let f = conformance_fixture();
    let checker = ConformanceChecker::uncached(ConformanceConfig::pragmatic());
    let us = time_us_per_op(100, 1000, || {
        let _ = checker.check(&f.received, &f.expected, &f.registry, &f.registry);
    });
    report.push(
        "E4",
        "conformance check (simple Person types)",
        "12.66 µs/check (a lower bound)",
        format!("{us:.3} µs/check"),
        true,
    );
    let cached = ConformanceChecker::new(ConformanceConfig::pragmatic());
    let _ = cached.check(&f.received, &f.expected, &f.registry, &f.registry);
    let cus = time_us_per_op(100, 1000, || {
        let _ = cached.check(&f.received, &f.expected, &f.registry, &f.registry);
    });
    report.push(
        "E4",
        "conformance re-check (GUID-pair cache, D5)",
        "— (our addition)",
        format!("{cus:.3} µs/check ({:.0}x faster)", us / cus),
        cus < us,
    );
}

fn f1_protocol(report: &mut Report) {
    println!("\nF1  Figure 1 — optimistic protocol vs eager baseline (bytes, virtual time)");
    for (label, objects, ratio, types) in [
        (
            "hot path: 50 objects of 1 known type",
            50usize,
            1.0f64,
            1usize,
        ),
        ("mixed: 50 objects, 10 types, 50% conforming", 50, 0.5, 10),
        (
            "hostile: 50 objects, 10 types, none conforming",
            50,
            0.0,
            10,
        ),
    ] {
        let opt = run_protocol(false, objects, ratio, types, 42);
        let eag = run_protocol(true, objects, ratio, types, 42);
        let saving = 100.0 * (1.0 - opt.bytes as f64 / eag.bytes as f64);
        report.push(
            "F1",
            label,
            "optimistic saves network resources",
            format!(
                "opt {} B vs eager {} B ({saving:.0}% saved); accepted {}/{}",
                opt.bytes,
                eag.bytes,
                opt.accepted,
                opt.accepted + opt.rejected
            ),
            opt.bytes < eag.bytes,
        );
    }
    // Cold start: a single novel type — the round trips cost latency.
    let opt = run_protocol(false, 1, 1.0, 1, 7);
    let eag = run_protocol(true, 1, 1.0, 1, 7);
    report.push(
        "F1",
        "cold start: 1 novel conformant object",
        "optimism costs round trips once",
        format!(
            "opt {} µs / {} msgs vs eager {} µs / {} msgs",
            opt.virtual_us, opt.messages, eag.virtual_us, eag.messages
        ),
        opt.messages > eag.messages,
    );
}

fn f3_serializers(report: &mut Report) {
    println!("\nF3  Figure 3 — hybrid envelope & serializer comparison (XML/SOAP/binary)");
    let f = serialization_fixture();
    let desc_xml = description_to_string(&f.description);
    let soap = to_soap_string(&f.runtime, &f.person).unwrap();
    let bin = to_binary(&f.runtime, &f.person).unwrap();
    report.push(
        "F3",
        "XML type description size",
        "small, human readable",
        format!("{} B", desc_xml.len()),
        true,
    );
    report.push(
        "F3",
        "SOAP vs binary payload size (Person)",
        "SOAP verbose, binary compact",
        format!("soap {} B vs binary {} B", soap.len(), bin.len()),
        bin.len() < soap.len(),
    );
    let nested_soap = to_soap_string(&f.runtime, &f.nested).unwrap();
    let nested_bin = to_binary(&f.runtime, &f.nested).unwrap();
    report.push(
        "F3",
        "SOAP vs binary payload size (nested A+B)",
        "gap grows with structure",
        format!(
            "soap {} B vs binary {} B",
            nested_soap.len(),
            nested_bin.len()
        ),
        nested_bin.len() < nested_soap.len(),
    );
    // Envelope overhead on top of the raw payload.
    let mut swarm = Swarm::new(NetConfig::default());
    let p = swarm.add_peer(ConformanceConfig::pragmatic());
    swarm
        .publish(p, samples::person_assembly(&samples::person_vendor_a()))
        .unwrap();
    let v = samples::make_person(&mut swarm.peer_mut(p).runtime, "benchmark subject");
    let env = swarm
        .peer(p)
        .make_envelope(&v, PayloadFormat::Binary)
        .unwrap();
    // The envelope adds a fixed metadata block (type id, download paths,
    // base64 framing) on top of the payload — an additive, bounded cost,
    // not a multiplicative one.
    let metadata = env.wire_size().saturating_sub(bin.len());
    report.push(
        "F3",
        "hybrid envelope metadata on top of raw binary",
        "bounded metadata cost",
        format!(
            "{} B total for {} B payload (+{metadata} B metadata)",
            env.wire_size(),
            bin.len()
        ),
        metadata < 1024,
    );
}

/// R1 — interest-indexed routing vs flood broadcast over sharded
/// `LiveBus` swarms: 32 members in 4 shards sharing one fabric, 8 event
/// types with exactly one subscriber each, interest gossip wiring the
/// publisher's routing table. Reports the message/byte saving and emits
/// `BENCH_routing.json` so the perf trajectory is tracked per PR.
fn r1_routing(report: &mut Report) -> String {
    use samples::{topic_event_assembly, topic_event_def};
    use std::time::Duration;

    let bench_start = Instant::now();

    const SHARDS: usize = 4;
    const PER_SHARD: usize = 8;
    const MEMBERS: usize = SHARDS * PER_SHARD;
    const TOPICS: usize = 8;
    const EVENTS: usize = 32;

    /// Round-robin the shards until one full sweep moves no traffic.
    fn pump(bus: &LiveBus, shards: &mut [Swarm<LiveBus>]) {
        let mut last = u64::MAX;
        loop {
            for sw in shards.iter_mut() {
                sw.run_for(Duration::from_millis(10)).unwrap();
            }
            let now = LiveBus::metrics(bus).messages;
            if now == last {
                return;
            }
            last = now;
        }
    }

    struct ModeResult {
        messages: u64,
        bytes: u64,
        /// Object envelopes on the wire: standalone + batched frames.
        object_envelopes: u64,
        batches: u64,
        batched_frames: u64,
        delivered: u64,
    }

    let run_mode = |routed: bool| -> ModeResult {
        let bus = LiveBus::new();
        let code = CodeRegistry::new();
        let mut shards: Vec<Swarm<LiveBus>> = (0..SHARDS)
            .map(|s| {
                let mut sw = Swarm::with_code_registry(bus.clone(), code.clone());
                for i in 0..PER_SHARD {
                    sw.add_peer_as(
                        PeerId((s * PER_SHARD + i + 1) as u32),
                        ConformanceConfig::pragmatic(),
                    );
                }
                sw
            })
            .collect();
        let publisher = PeerId(1);
        // The publisher's shard can name every member (flood baseline);
        // subscriber shards know the publisher (gossip target).
        for id in 1..=MEMBERS {
            shards[0].add_contact(PeerId(id as u32));
        }
        for shard in shards.iter_mut().skip(1) {
            shard.add_contact(publisher);
        }
        for t in 0..TOPICS {
            shards[0]
                .publish(publisher, topic_event_assembly(t))
                .unwrap();
        }
        // One subscriber per topic, spread over the non-publisher shards.
        let subscriber_of = |t: usize| PeerId((9 + 3 * t) as u32);
        for t in 0..TOPICS {
            let sub = subscriber_of(t);
            let shard = ((sub.0 - 1) / PER_SHARD as u32) as usize;
            shards[shard].subscribe(sub, TypeDescription::from_def(&topic_event_def(t, "sub")));
        }
        // Let the subscribe gossip reach the publisher's routing table,
        // then measure only the publish traffic.
        pump(&bus, &mut shards);
        let mut hub = bus.clone();
        Transport::reset_metrics(&mut hub);

        for i in 0..EVENTS {
            let t = i % TOPICS;
            let h = shards[0]
                .peer_mut(publisher)
                .runtime
                .instantiate_def(&topic_event_def(t, "pub"), &[])
                .unwrap();
            let v = Value::Obj(h);
            if routed {
                shards[0]
                    .route_object(publisher, &v, PayloadFormat::Binary)
                    .unwrap();
            } else {
                shards[0]
                    .flood_object(publisher, &v, PayloadFormat::Binary)
                    .unwrap();
            }
        }
        pump(&bus, &mut shards);

        let delivered = (0..TOPICS)
            .map(|t| {
                let sub = subscriber_of(t);
                let shard = ((sub.0 - 1) / PER_SHARD as u32) as usize;
                shards[shard].peer(sub).stats.accepted
            })
            .sum();
        let m = LiveBus::metrics(&bus);
        ModeResult {
            messages: m.messages,
            bytes: m.bytes,
            object_envelopes: m.kind("object").messages + m.batched_frames(),
            batches: m.batches(),
            batched_frames: m.batched_frames(),
            delivered,
        }
    };

    println!("\nR1  routing — interest-indexed vs flood over {SHARDS} LiveBus shards");
    let routed = run_mode(true);
    let flood = run_mode(false);
    let factor = flood.object_envelopes as f64 / routed.object_envelopes.max(1) as f64;
    report.push(
        "R1",
        &format!("routed delivery ({MEMBERS} members, 1 subscriber/type)"),
        "O(subscribers) envelopes",
        format!(
            "{} envelopes / {} msgs / {} B; {} batches x {} frames; {} delivered",
            routed.object_envelopes,
            routed.messages,
            routed.bytes,
            routed.batches,
            routed.batched_frames,
            routed.delivered
        ),
        routed.delivered as usize == EVENTS,
    );
    report.push(
        "R1",
        "flood baseline (same workload)",
        "O(members) envelopes",
        format!(
            "{} envelopes / {} msgs / {} B; {} delivered",
            flood.object_envelopes, flood.messages, flood.bytes, flood.delivered
        ),
        flood.delivered as usize == EVENTS,
    );
    report.push(
        "R1",
        "routing saving factor (object envelopes)",
        ">= 4x",
        format!(
            "{factor:.1}x fewer envelopes, {:.1}x fewer bytes",
            flood.bytes as f64 / routed.bytes.max(1) as f64
        ),
        factor >= 4.0,
    );

    let json_mode = |r: &ModeResult| {
        format!(
            "{{\"messages\": {}, \"bytes\": {}, \"object_envelopes\": {}, \"batches\": {}, \
             \"batched_frames\": {}, \"delivered\": {}}}",
            r.messages, r.bytes, r.object_envelopes, r.batches, r.batched_frames, r.delivered
        )
    };
    format!(
        "{{\n  \"members\": {MEMBERS},\n  \"shards\": {SHARDS},\n  \"topics\": {TOPICS},\n  \
         \"events\": {EVENTS},\n  \"threads\": 1,\n  \"routed\": {},\n  \"flood\": {},\n  \
         \"envelope_saving_factor\": {factor:.2},\n  \"elapsed_ms\": {:.1}\n}}\n",
        json_mode(&routed),
        json_mode(&flood),
        bench_start.elapsed().as_secs_f64() * 1e3,
    )
}

/// R2 — membership gossip over a 4-shard `LiveBus` group wired entirely
/// by `Swarm::join` (zero manual `add_contact`): measures the control
/// overhead of assembling the group (JOIN/VIEW messages and bytes),
/// the convergence of a *late* shard that subscribes before joining,
/// and the group-wide retirement a LEAVE triggers. Emits
/// `BENCH_membership.json` so the overhead trajectory is tracked per PR.
fn r2_membership(report: &mut Report) -> String {
    use samples::{topic_event_assembly, topic_event_def};
    use std::time::Duration;

    let bench_start = Instant::now();

    const SHARDS: usize = 4;
    const PER_SHARD: usize = 8;
    const MEMBERS: usize = SHARDS * PER_SHARD;
    const TOPICS: usize = 8;
    const EVENTS: usize = 32;

    /// Round-robin the shards until one full sweep moves no traffic;
    /// returns how many sweeps actually moved messages (the final
    /// idle sweep that proves quiescence is not convergence work).
    fn pump(bus: &LiveBus, shards: &mut [Swarm<LiveBus>]) -> u64 {
        let mut sweeps = 0u64;
        let mut last = LiveBus::metrics(bus).messages;
        loop {
            for sw in shards.iter_mut() {
                sw.run_for(Duration::from_millis(2)).unwrap();
            }
            let now = LiveBus::metrics(bus).messages;
            if now == last {
                return sweeps;
            }
            sweeps += 1;
            last = now;
        }
    }

    let bus = LiveBus::new();
    let code = CodeRegistry::new();
    let mut shards: Vec<Swarm<LiveBus>> = (0..SHARDS)
        .map(|s| {
            let mut sw = Swarm::with_code_registry(bus.clone(), code.clone());
            for i in 0..PER_SHARD {
                sw.add_peer_as(
                    PeerId((s * PER_SHARD + i + 1) as u32),
                    ConformanceConfig::pragmatic(),
                );
            }
            sw
        })
        .collect();
    let publisher = PeerId(1);
    for t in 0..TOPICS {
        shards[0]
            .publish(publisher, topic_event_assembly(t))
            .unwrap();
    }
    // One subscriber per topic, spread over the non-publisher shards —
    // all subscribed *before* their shard joins, so every interest must
    // ride a JOIN announcement (the late-join re-announcement path).
    let subscriber_of = |t: usize| PeerId((9 + 3 * t) as u32);
    let shard_of = |p: PeerId| ((p.0 - 1) / PER_SHARD as u32) as usize;
    for t in 0..TOPICS {
        let sub = subscriber_of(t);
        shards[shard_of(sub)].subscribe(sub, TypeDescription::from_def(&topic_event_def(t, "sub")));
    }

    // Assemble the group through the membership protocol alone.
    let wire_start = Instant::now();
    for s in 1..SHARDS {
        shards[s].join(publisher).unwrap();
        pump(&bus, &mut shards);
    }
    let wire_us = wire_start.elapsed().as_secs_f64() * 1e6;
    let wire = LiveBus::metrics(&bus);
    // Attributed across standalone *and* batched frames: JOIN-relayed
    // VIEW announcements ride the wire-batching path, so plain per-kind
    // counters undercount the membership traffic.
    let control = wire.attributed_sum(&["join", "view", "leave"]);
    let control_messages = control.messages;
    let control_bytes = control.bytes;
    let joins = (SHARDS - 1) as u64;
    let control_bytes_per_join = control_bytes as f64 / joins as f64;
    report.push(
        "R2",
        "control bytes per join (gossip wiring cost)",
        "text-gossip baseline",
        format!(
            "{control_bytes_per_join:.0} B/join over {joins} joins \
             ({control_messages} control msgs incl. batched)"
        ),
        control_bytes_per_join > 0.0,
    );

    // Routed delivery over the gossip-wired tables.
    let mut hub = bus.clone();
    Transport::reset_metrics(&mut hub);
    for i in 0..EVENTS {
        let t = i % TOPICS;
        let h = shards[0]
            .peer_mut(publisher)
            .runtime
            .instantiate_def(&topic_event_def(t, "pub"), &[])
            .unwrap();
        shards[0]
            .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap();
    }
    pump(&bus, &mut shards);
    let delivered: u64 = (0..TOPICS)
        .map(|t| {
            let sub = subscriber_of(t);
            shards[shard_of(sub)].peer(sub).stats.accepted
        })
        .sum();
    report.push(
        "R2",
        &format!(
            "group of {MEMBERS} wired by join gossip ({} joins)",
            SHARDS - 1
        ),
        "zero manual contact wiring",
        format!(
            "{control_messages} control msgs / {control_bytes} B in {wire_us:.0} µs; \
             {delivered}/{EVENTS} routed events delivered"
        ),
        delivered as usize == EVENTS,
    );

    // A late shard that subscribed before joining: how long until its
    // interest is live group-wide?
    let mut late = Swarm::with_code_registry(bus.clone(), code.clone());
    let late_sub = late.add_peer_as(PeerId(100), ConformanceConfig::pragmatic());
    late.subscribe(
        late_sub,
        TypeDescription::from_def(&topic_event_def(0, "late")),
    );
    Transport::reset_metrics(&mut hub);
    let join_start = Instant::now();
    late.join(publisher).unwrap();
    shards.push(late);
    let sweeps = pump(&bus, &mut shards);
    let converge_us = join_start.elapsed().as_secs_f64() * 1e6;
    let join_overhead = LiveBus::metrics(&bus);
    let h = shards[0]
        .peer_mut(publisher)
        .runtime
        .instantiate_def(&topic_event_def(0, "pub"), &[])
        .unwrap();
    let late_targets = shards[0]
        .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
        .unwrap();
    pump(&bus, &mut shards);
    let late_delivered = shards[SHARDS].peer(late_sub).stats.accepted;
    report.push(
        "R2",
        "late joiner (subscribed pre-join) converges",
        "joins without re-subscribing",
        format!(
            "{converge_us:.0} µs / {sweeps} sweeps / {} msgs; next publish routed to \
             {late_targets} incl. joiner ({late_delivered} delivered)",
            join_overhead.messages
        ),
        late_targets == 2 && late_delivered == 1,
    );

    // One shard leaves: every engine must retire its peers and routes.
    let before = {
        let h = shards[0]
            .peer_mut(publisher)
            .runtime
            .instantiate_def(&topic_event_def(6, "pub"), &[])
            .unwrap();
        shards[0]
            .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap()
    };
    pump(&bus, &mut shards);
    shards[3].leave();
    pump(&bus, &mut shards);
    let after = {
        let h = shards[0]
            .peer_mut(publisher)
            .runtime
            .instantiate_def(&topic_event_def(6, "pub"), &[])
            .unwrap();
        shards[0]
            .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap()
    };
    pump(&bus, &mut shards);
    // Topic 6's subscriber (peer 27) lived in the departed shard.
    report.push(
        "R2",
        "LEAVE retires view + routes together",
        "no traffic to departed peers",
        format!("topic-6 targets {before} -> {after} after shard 3 left"),
        before == 1 && after == 0,
    );

    format!(
        "{{\n  \"members\": {MEMBERS},\n  \"shards\": {SHARDS},\n  \"topics\": {TOPICS},\n  \
         \"wiring\": {{\"control_messages\": {control_messages}, \"control_bytes\": \
         {control_bytes}, \"joins\": {joins}, \"control_bytes_per_join\": \
         {control_bytes_per_join:.1}, \"wall_us\": {wire_us:.0}, \"delivered\": {delivered}}},\n  \
         \"late_join\": {{\"convergence_us\": {converge_us:.0}, \"sweeps\": {sweeps}, \
         \"messages\": {}, \"routed_to\": {late_targets}, \"delivered\": {late_delivered}}},\n  \
         \"leave\": {{\"targets_before\": {before}, \"targets_after\": {after}}},\n  \
         \"threads\": 1,\n  \"elapsed_ms\": {:.1}\n}}\n",
        join_overhead.messages,
        bench_start.elapsed().as_secs_f64() * 1e3,
    )
}

/// R3 — the zero-copy binary wire path: the routed workload of R1 with
/// three subscribers per topic (a real fan-out), run once with XML
/// envelopes and once with the binary (`PTIB`) default. Measures object
/// bytes/event (attributed across standalone and batched frames by the
/// per-kind overlay `NetMetrics` keeps), publish throughput, and the
/// encode counter proving one envelope encode per publish with the
/// encoded bytes *shared* across destinations (payload fan-out is
/// refcounted, a structural property of `Payload`). Emits
/// `BENCH_wirepath.json`; CI fails if binary bytes/event exceed half the
/// XML baseline. Also returns the binary mode's events/s — the LiveBus
/// throughput baseline the R4 reactor experiment is gated against.
fn r3_wirepath(report: &mut Report) -> (String, f64) {
    use samples::{topic_event_assembly, topic_event_def};
    use std::time::Duration;

    let bench_start = Instant::now();

    const SHARDS: usize = 4;
    const PER_SHARD: usize = 8;
    const MEMBERS: usize = SHARDS * PER_SHARD;
    const TOPICS: usize = 8;
    const SUBS_PER_TOPIC: usize = 3;
    const EVENTS: usize = 64;

    fn pump(bus: &LiveBus, shards: &mut [Swarm<LiveBus>]) {
        let mut last = u64::MAX;
        loop {
            for sw in shards.iter_mut() {
                sw.run_for(Duration::from_millis(2)).unwrap();
            }
            let now = LiveBus::metrics(bus).messages;
            if now == last {
                return;
            }
            last = now;
        }
    }

    struct ModeResult {
        object_bytes: u64,
        object_envelopes: u64,
        bytes_per_event: f64,
        events_per_sec: f64,
        payload_encodes: u64,
        delivered: u64,
    }

    // One peer holds several subscribers' worth of interests; ids 2..=25
    // spread over all four shards.
    let subscriber_of = |t: usize, k: usize| PeerId((2 + SUBS_PER_TOPIC * t + k) as u32);
    let shard_of = |p: PeerId| ((p.0 - 1) / PER_SHARD as u32) as usize;

    let run_mode = |wire: EnvelopeWireFormat| -> ModeResult {
        let bus = LiveBus::new();
        let code = CodeRegistry::new();
        let mut shards: Vec<Swarm<LiveBus>> = (0..SHARDS)
            .map(|s| {
                let mut sw = Swarm::with_code_registry(bus.clone(), code.clone());
                sw.set_envelope_wire_format(wire);
                for i in 0..PER_SHARD {
                    sw.add_peer_as(
                        PeerId((s * PER_SHARD + i + 1) as u32),
                        ConformanceConfig::pragmatic(),
                    );
                }
                sw
            })
            .collect();
        let publisher = PeerId(1);
        for id in 1..=MEMBERS {
            shards[0].add_contact(PeerId(id as u32));
        }
        for shard in shards.iter_mut().skip(1) {
            shard.add_contact(publisher);
        }
        for t in 0..TOPICS {
            shards[0]
                .publish(publisher, topic_event_assembly(t))
                .unwrap();
        }
        for t in 0..TOPICS {
            for k in 0..SUBS_PER_TOPIC {
                let sub = subscriber_of(t, k);
                shards[shard_of(sub)]
                    .subscribe(sub, TypeDescription::from_def(&topic_event_def(t, "sub")));
            }
        }
        pump(&bus, &mut shards);
        // Warm the exchange (desc/asm fetched once per subscriber peer),
        // so the measured loop is the steady-state publish path.
        for t in 0..TOPICS {
            let h = shards[0]
                .peer_mut(publisher)
                .runtime
                .instantiate_def(&topic_event_def(t, "pub"), &[])
                .unwrap();
            shards[0]
                .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap();
        }
        pump(&bus, &mut shards);
        let mut hub = bus.clone();
        Transport::reset_metrics(&mut hub);

        let start = Instant::now();
        for i in 0..EVENTS {
            let t = i % TOPICS;
            let h = shards[0]
                .peer_mut(publisher)
                .runtime
                .instantiate_def(&topic_event_def(t, "pub"), &[])
                .unwrap();
            shards[0]
                .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap();
        }
        pump(&bus, &mut shards);
        let wall = start.elapsed().as_secs_f64();

        let delivered = (0..TOPICS)
            .flat_map(|t| (0..SUBS_PER_TOPIC).map(move |k| subscriber_of(t, k)))
            .map(|sub| shards[shard_of(sub)].peer(sub).stats.accepted)
            .sum::<u64>()
            - (TOPICS * SUBS_PER_TOPIC) as u64; // minus the warmup events
        let m = LiveBus::metrics(&bus);
        let object = m.attributed("object");
        ModeResult {
            object_bytes: object.bytes,
            object_envelopes: object.messages,
            bytes_per_event: object.bytes as f64 / EVENTS as f64,
            events_per_sec: EVENTS as f64 / wall,
            payload_encodes: m.payload_encodes,
            delivered,
        }
    };

    println!("\nR3  wire path — XML vs binary envelopes, shared-payload fan-out");
    let xml = run_mode(EnvelopeWireFormat::Xml);
    let bin = run_mode(EnvelopeWireFormat::Ptib);
    let reduction = xml.bytes_per_event / bin.bytes_per_event.max(1.0);
    let expected_delivered = (EVENTS * SUBS_PER_TOPIC) as u64;
    report.push(
        "R3",
        &format!("XML envelope baseline ({MEMBERS} members, {SUBS_PER_TOPIC} subs/topic)"),
        "verbose text + base64",
        format!(
            "{:.0} B/event over {} envelopes; {:.0} events/s; {} delivered",
            xml.bytes_per_event, xml.object_envelopes, xml.events_per_sec, xml.delivered
        ),
        xml.delivered == expected_delivered,
    );
    report.push(
        "R3",
        "binary (PTIB) envelope default",
        ">=2x fewer bytes/event",
        format!(
            "{:.0} B/event ({reduction:.1}x reduction); {:.0} events/s; {} delivered",
            bin.bytes_per_event, bin.events_per_sec, bin.delivered
        ),
        reduction >= 2.0 && bin.delivered == expected_delivered,
    );
    report.push(
        "R3",
        "one encode per publish, zero per-destination copies",
        "encodes == events",
        format!(
            "{} encodes / {EVENTS} events; {} envelopes shared the {} buffers",
            bin.payload_encodes, bin.object_envelopes, bin.payload_encodes
        ),
        bin.payload_encodes == EVENTS as u64,
    );

    let json_mode = |r: &ModeResult| {
        format!(
            "{{\"object_bytes\": {}, \"object_envelopes\": {}, \"bytes_per_event\": {:.1}, \
             \"events_per_sec\": {:.0}, \"payload_encodes\": {}, \"delivered\": {}}}",
            r.object_bytes,
            r.object_envelopes,
            r.bytes_per_event,
            r.events_per_sec,
            r.payload_encodes,
            r.delivered
        )
    };
    let json = format!(
        "{{\n  \"members\": {MEMBERS},\n  \"topics\": {TOPICS},\n  \"subscribers_per_topic\": \
         {SUBS_PER_TOPIC},\n  \"events\": {EVENTS},\n  \"threads\": 1,\n  \"xml\": {},\n  \
         \"binary\": {},\n  \"bytes_per_event_reduction\": {reduction:.2},\n  \
         \"encodes_per_publish\": {:.2},\n  \"elapsed_ms\": {:.1}\n}}\n",
        json_mode(&xml),
        json_mode(&bin),
        bin.payload_encodes as f64 / EVENTS as f64,
        bench_start.elapsed().as_secs_f64() * 1e3,
    );
    (json, bin.events_per_sec)
}

/// R4 — the reactor fabric at scale: 1024 single-peer member swarms plus
/// one publisher swarm, all mounted on one `ReactorHost` and driven by a
/// **single thread**. Subscribers spread over 64 topics (fan-out 16 per
/// event) and every event crosses the interest router, the wire-batching
/// path and the full optimistic exchange — the same machinery as R3's
/// LiveBus run, minus the thread-per-driver limit the reactor exists to
/// remove. Emits `BENCH_reactor.json`; CI fails if fewer than 1k members
/// ran on one thread or events/s fall below 0.5x the R3 LiveBus
/// baseline.
fn r4_reactor(report: &mut Report, livebus_events_per_sec: f64) -> String {
    use samples::{topic_event_assembly, topic_event_def};

    let bench_start = Instant::now();
    const MEMBERS: usize = 1024;
    const TOPICS: usize = 64;
    const EVENTS: usize = 256;
    const FANOUT: usize = MEMBERS / TOPICS;

    let mut host = ReactorHost::new();
    let code = CodeRegistry::new();
    let mk = |code: &CodeRegistry| {
        let code = code.clone();
        move |net| Swarm::with_code_registry(net, code)
    };

    let pub_slot = host.mount(mk(&code));
    let publisher = host.with_swarm(pub_slot, |s| {
        s.add_peer_as(PeerId(1), ConformanceConfig::pragmatic())
    });
    host.with_swarm(pub_slot, |s| {
        for t in 0..TOPICS {
            s.publish(publisher, topic_event_assembly(t)).unwrap();
        }
    });
    // Interest wiring: each member swarm knows only the publisher; its
    // SUBSCRIBE gossip builds the publisher's routing table.
    let setup_start = Instant::now();
    for i in 0..MEMBERS {
        let slot = host.mount(mk(&code));
        host.with_swarm(slot, |s| {
            let p = s.add_peer_as(PeerId(2 + i as u32), ConformanceConfig::pragmatic());
            s.add_contact(publisher);
            s.subscribe(
                p,
                TypeDescription::from_def(&topic_event_def(i % TOPICS, "sub")),
            );
        });
    }
    host.run_until_quiescent().unwrap();
    let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

    // Warm the exchange: one event per topic settles every member's
    // desc/asm fetch, so the measured loop is the steady-state path.
    host.with_swarm(pub_slot, |s| {
        for t in 0..TOPICS {
            let h = s
                .peer_mut(publisher)
                .runtime
                .instantiate_def(&topic_event_def(t, "pub"), &[])
                .unwrap();
            s.route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap();
        }
    });
    host.run_until_quiescent().unwrap();

    let hub = host.reactor();
    {
        let mut net = hub.clone();
        Transport::reset_metrics(&mut net);
    }
    let stats_before = hub.stats();

    let start = Instant::now();
    host.with_swarm(pub_slot, |s| {
        for i in 0..EVENTS {
            let h = s
                .peer_mut(publisher)
                .runtime
                .instantiate_def(&topic_event_def(i % TOPICS, "pub"), &[])
                .unwrap();
            s.route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap();
        }
    });
    host.run_until_quiescent().unwrap();
    let wall = start.elapsed().as_secs_f64();

    let expected = (EVENTS * FANOUT) as u64;
    let delivered: u64 = (0..MEMBERS)
        .map(|i| host.with_swarm(1 + i, |s| s.peer(PeerId(2 + i as u32)).stats.accepted))
        .sum::<u64>()
        - MEMBERS as u64; // minus the warmup event each member accepted
    let events_per_sec = EVENTS as f64 / wall;
    let deliveries_per_sec = delivered as f64 / wall;
    let baseline_ratio = events_per_sec / livebus_events_per_sec.max(1e-9);
    let stats = hub.stats();
    let wakeups = stats.wakeups - stats_before.wakeups;

    println!("\nR4  reactor — {MEMBERS} member swarms, one thread, readiness-driven");
    report.push(
        "R4",
        &format!(
            "{MEMBERS} members / {} swarms on one reactor thread",
            host.len()
        ),
        ">=1k members, 1 thread",
        format!(
            "wired in {setup_ms:.0} ms; {delivered}/{expected} routed events delivered \
             ({} wakeups)",
            wakeups
        ),
        delivered == expected && MEMBERS >= 1000,
    );
    report.push(
        "R4",
        &format!("throughput vs R3 LiveBus baseline (fan-out {FANOUT})"),
        ">=0.5x events/s",
        format!(
            "{events_per_sec:.0} events/s ({deliveries_per_sec:.0} deliveries/s) vs \
             {livebus_events_per_sec:.0} = {baseline_ratio:.2}x"
        ),
        baseline_ratio >= 0.5,
    );

    format!(
        "{{\n  \"members\": {MEMBERS},\n  \"swarms\": {},\n  \"threads\": 1,\n  \"topics\": \
         {TOPICS},\n  \"fanout\": {FANOUT},\n  \"events\": {EVENTS},\n  \"deliveries\": \
         {delivered},\n  \"setup_ms\": {setup_ms:.1},\n  \"events_per_sec\": \
         {events_per_sec:.0},\n  \"deliveries_per_sec\": {deliveries_per_sec:.0},\n  \
         \"livebus_events_per_sec\": {livebus_events_per_sec:.0},\n  \"baseline_ratio\": \
         {baseline_ratio:.2},\n  \"wakeups\": {wakeups},\n  \"reactor_sends\": {},\n  \
         \"reactor_recvs\": {},\n  \"elapsed_ms\": {:.1}\n}}\n",
        host.len(),
        stats.sends,
        stats.recvs,
        bench_start.elapsed().as_secs_f64() * 1e3,
    )
}

/// R5 — the sharded multi-reactor host: the R4 workload (1024 members,
/// 64 topics, fan-out 16) on a `ShardedHost` at 1, 2 and 4 shards,
/// members hash-pinned by peer id, the publisher pinned to shard 0, all
/// cross-shard edges riding the injector bridges. On a single-core
/// container wall clock cannot show parallel speedup, so the scaling
/// metric is the **critical path**: per-shard busy nanoseconds under the
/// serialized two-phase barrier, with events/s computed against the
/// slowest shard — the shard a real M-core host would wait on. The
/// honest wall-clock time is reported alongside. Emits
/// `BENCH_shards.json`; CI fails unless the 4-shard critical path beats
/// the 1-shard run by >=1.5x and every run used one thread per shard.
fn r5_shards(report: &mut Report) -> String {
    use samples::{topic_event_assembly, topic_event_def};

    let bench_start = Instant::now();
    const MEMBERS: usize = 1024;
    const TOPICS: usize = 64;
    const EVENTS: usize = 256;
    const FANOUT: usize = MEMBERS / TOPICS;

    struct ShardRun {
        shards: usize,
        deliveries: u64,
        setup_ms: f64,
        wall_ms: f64,
        max_busy_ms: f64,
        total_busy_ms: f64,
        events_per_sec: f64,
        bridge_crossings: u64,
        crossing_ratio: f64,
        messages: u64,
    }

    let run = |n: usize| -> ShardRun {
        let mut host = ShardedHost::new(n);
        // Autonomy off: every cycle runs inside the serialized barrier,
        // so the busy counters partition the work exactly.
        host.set_autonomous(false);
        let code = CodeRegistry::new();
        let mk = |code: &CodeRegistry| {
            let code = code.clone();
            move |net| Swarm::with_code_registry(net, code)
        };

        let pub_slot = host.mount_pinned(0, mk(&code));
        let publisher = host.with_swarm(pub_slot, |s| {
            s.add_peer_as(PeerId(1), ConformanceConfig::pragmatic())
        });
        host.with_swarm(pub_slot, move |s| {
            for t in 0..TOPICS {
                s.publish(publisher, topic_event_assembly(t)).unwrap();
            }
        });
        let setup_start = Instant::now();
        for i in 0..MEMBERS {
            let id = PeerId(2 + i as u32);
            let slot = host.mount(id, mk(&code));
            host.with_swarm(slot, move |s| {
                let p = s.add_peer_as(id, ConformanceConfig::pragmatic());
                s.add_contact(PeerId(1));
                s.subscribe(
                    p,
                    TypeDescription::from_def(&topic_event_def(i % TOPICS, "sub")),
                );
            });
        }
        host.run_until_quiescent().unwrap();
        let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

        // Warm the exchange, then zero the counters: the measured phase
        // is the steady-state publish + fan-out + barrier drain.
        host.with_swarm(pub_slot, move |s| {
            for t in 0..TOPICS {
                let h = s
                    .peer_mut(publisher)
                    .runtime
                    .instantiate_def(&topic_event_def(t, "pub"), &[])
                    .unwrap();
                s.route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
                    .unwrap();
            }
        });
        host.run_until_quiescent().unwrap();
        host.reset_metrics();
        host.reset_busy();

        let start = Instant::now();
        host.with_swarm(pub_slot, move |s| {
            for i in 0..EVENTS {
                let h = s
                    .peer_mut(publisher)
                    .runtime
                    .instantiate_def(&topic_event_def(i % TOPICS, "pub"), &[])
                    .unwrap();
                s.route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
                    .unwrap();
            }
        });
        host.run_until_quiescent().unwrap();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let busy = host.busy_ns();
        let max_busy_ms = busy.iter().copied().max().unwrap_or(0) as f64 / 1e6;
        let total_busy_ms = busy.iter().sum::<u64>() as f64 / 1e6;

        let expected = (EVENTS * FANOUT) as u64;
        let delivered: u64 = (0..MEMBERS)
            .map(|i| host.with_swarm(1 + i, move |s| s.peer(PeerId(2 + i as u32)).stats.accepted))
            .sum::<u64>()
            - MEMBERS as u64; // minus the warmup event each member accepted
        assert_eq!(delivered, expected, "sharded fan-out lost events");
        let m = host.metrics();
        ShardRun {
            shards: n,
            deliveries: delivered,
            setup_ms,
            wall_ms,
            max_busy_ms,
            total_busy_ms,
            events_per_sec: EVENTS as f64 / (max_busy_ms / 1e3).max(1e-9),
            bridge_crossings: m.bridge_crossings,
            crossing_ratio: m.bridge_crossings as f64 / m.messages.max(1) as f64,
            messages: m.messages,
        }
    };

    println!("\nR5  sharded host — R4 workload over 1/2/4 reactor shards");
    let runs: Vec<ShardRun> = [1usize, 2, 4].iter().map(|&n| run(n)).collect();
    for r in &runs {
        report.push(
            "R5",
            &format!("{MEMBERS} members on {} shard(s)", r.shards),
            "all events delivered",
            format!(
                "{} deliveries; critical path {:.0} ms (Σ busy {:.0} ms, wall {:.0} ms); \
                 {:.0} events/s; {} bridge crossings ({:.0}% of msgs)",
                r.deliveries,
                r.max_busy_ms,
                r.total_busy_ms,
                r.wall_ms,
                r.events_per_sec,
                r.bridge_crossings,
                r.crossing_ratio * 100.0
            ),
            r.deliveries == (EVENTS * FANOUT) as u64
                && (r.shards == 1) == (r.bridge_crossings == 0),
        );
    }
    let scaling = runs[2].events_per_sec / runs[0].events_per_sec.max(1e-9);
    report.push(
        "R5",
        "critical-path scaling, 4 shards vs 1",
        ">=1.5x events/s",
        format!(
            "{scaling:.2}x ({:.0} vs {:.0} events/s on the slowest shard)",
            runs[2].events_per_sec, runs[0].events_per_sec
        ),
        scaling >= 1.5,
    );

    let json_run = |r: &ShardRun| {
        format!(
            "    {{\"shards\": {}, \"threads\": {}, \"deliveries\": {}, \"setup_ms\": {:.1}, \
             \"wall_ms\": {:.1}, \"max_busy_ms\": {:.2}, \"total_busy_ms\": {:.2}, \
             \"events_per_sec\": {:.0}, \"bridge_crossings\": {}, \"crossing_ratio\": {:.3}, \
             \"messages\": {}}}",
            r.shards,
            r.shards,
            r.deliveries,
            r.setup_ms,
            r.wall_ms,
            r.max_busy_ms,
            r.total_busy_ms,
            r.events_per_sec,
            r.bridge_crossings,
            r.crossing_ratio,
            r.messages,
        )
    };
    format!(
        "{{\n  \"members\": {MEMBERS},\n  \"topics\": {TOPICS},\n  \"fanout\": {FANOUT},\n  \
         \"events\": {EVENTS},\n  \"threads\": 4,\n  \"runs\": [\n{}\n  ],\n  \
         \"scaling_4x_vs_1x\": {scaling:.2},\n  \"elapsed_ms\": {:.1}\n}}\n",
        runs.iter().map(json_run).collect::<Vec<_>>().join(",\n"),
        bench_start.elapsed().as_secs_f64() * 1e3,
    )
}

/// R6 — durable delivery under seeded faults: an `AtLeastOnce`
/// publisher/subscriber pair on the virtual-time `SimNet`, swept over
/// fabric loss rates (0%, 2%, 5%). The desc/asm exchange is warmed up
/// losslessly — only the reliable OBJECT path is repaired by
/// retransmission — then each loss level publishes `EVENTS` events,
/// interleaved with pumps so every event rides its own fabric send, and
/// drives the swarm through its retransmit deadlines with
/// `run_durable`. Measures eventual delivery, duplicates surfaced above
/// the dedup watermark (must be zero), repair work (retransmits), and
/// the high-water queue depths against the credit window. Emits
/// `BENCH_durability.json`; CI fails unless delivery is 100% at 5% loss
/// with zero surfaced duplicates and `max_inflight` within the credit
/// window.
fn r6_durability(report: &mut Report) -> String {
    let bench_start = Instant::now();
    const EVENTS: u64 = 200;
    const WINDOW: usize = 16;

    struct LossRun {
        loss_permille: u16,
        delivered: u64,
        dup_surfaced: u64,
        dup_suppressed: u64,
        retransmits: u64,
        frames_sent: u64,
        max_inflight: usize,
        max_pending: usize,
        faults_dropped: u64,
        wall_ms: f64,
    }

    let run = |loss: u16| -> LossRun {
        let start = Instant::now();
        let mut swarm = Swarm::new(NetConfig::default());
        let alice = swarm.add_peer(ConformanceConfig::pragmatic());
        let bob = swarm.add_peer(ConformanceConfig::pragmatic());
        let a = samples::person_vendor_a();
        swarm.publish(alice, samples::person_assembly(&a)).unwrap();
        swarm.set_qos(QoS::AtLeastOnce);
        swarm.set_credit_window(WINDOW);
        swarm.subscribe(bob, TypeDescription::from_def(&samples::person_vendor_b()));
        let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "warmup");
        swarm
            .route_object(alice, &v, PayloadFormat::Binary)
            .unwrap();
        swarm.run_durable().unwrap();
        assert_eq!(swarm.peer(bob).stats.accepted, 1, "warm-up delivered");

        swarm
            .net_mut()
            .install_fault_plan(FaultPlan::new(0xD00D ^ loss as u64).with_loss(loss));
        for i in 0..EVENTS {
            let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, &format!("e{i}"));
            swarm
                .route_object(alice, &v, PayloadFormat::Binary)
                .unwrap();
            swarm.run().unwrap();
        }
        swarm.run_durable().unwrap();
        assert!(
            swarm.take_dispatch_errors().is_empty(),
            "no link shed at {loss} permille"
        );

        let st = swarm.delivery_stats();
        let accepted = swarm.peer(bob).stats.accepted - 1; // minus warm-up
        LossRun {
            loss_permille: loss,
            delivered: accepted.min(EVENTS),
            dup_surfaced: accepted.saturating_sub(EVENTS),
            dup_suppressed: st.duplicates_suppressed,
            retransmits: st.retransmits,
            frames_sent: st.frames_sent,
            max_inflight: st.max_inflight,
            max_pending: st.max_pending,
            faults_dropped: swarm.metrics().faults_dropped,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    };

    println!("\nR6  durability — at-least-once delivery under seeded loss");
    let runs: Vec<LossRun> = [0u16, 20, 50].iter().map(|&l| run(l)).collect();
    for r in &runs {
        report.push(
            "R6",
            &format!(
                "{EVENTS} events at {:.0}% seeded loss",
                r.loss_permille as f64 / 10.0
            ),
            "100% delivery, 0 dup",
            format!(
                "{}/{EVENTS} delivered, {} dup surfaced ({} suppressed), {} retransmits \
                 ({} dropped), queue depth {}/{} inflight, {} pending",
                r.delivered,
                r.dup_surfaced,
                r.dup_suppressed,
                r.retransmits,
                r.faults_dropped,
                r.max_inflight,
                WINDOW,
                r.max_pending,
            ),
            r.delivered == EVENTS && r.dup_surfaced == 0 && r.max_inflight <= WINDOW,
        );
    }

    let json_run = |r: &LossRun| {
        format!(
            "    {{\"loss_permille\": {}, \"published\": {EVENTS}, \"delivered\": {}, \
             \"delivery_ratio\": {:.3}, \"duplicates_surfaced\": {}, \
             \"duplicates_suppressed\": {}, \"retransmits\": {}, \"frames_sent\": {}, \
             \"max_inflight\": {}, \"max_pending\": {}, \"faults_dropped\": {}, \
             \"wall_ms\": {:.1}}}",
            r.loss_permille,
            r.delivered,
            r.delivered as f64 / EVENTS as f64,
            r.dup_surfaced,
            r.dup_suppressed,
            r.retransmits,
            r.frames_sent,
            r.max_inflight,
            r.max_pending,
            r.faults_dropped,
            r.wall_ms,
        )
    };
    format!(
        "{{\n  \"events\": {EVENTS},\n  \"credit_window\": {WINDOW},\n  \
         \"qos\": \"at-least-once\",\n  \"threads\": 1,\n  \"runs\": [\n{}\n  ],\n  \
         \"elapsed_ms\": {:.1}\n}}\n",
        runs.iter().map(json_run).collect::<Vec<_>>().join(",\n"),
        bench_start.elapsed().as_secs_f64() * 1e3,
    )
}

fn a1_name_matchers(report: &mut Report) {
    println!("\nA1  ablation D1 — name matcher strictness vs match rate & cost");
    let variants = samples::generate_population(3, 200, 0.5);
    let interest = samples::sensor_interest("interest");
    let mut reg = TypeRegistry::with_builtins();
    reg.register(interest.clone()).unwrap();
    for v in &variants {
        let _ = reg.register(v.def.clone());
    }
    let idesc = TypeDescription::from_def(&interest);
    for (label, cfg) in [
        ("exact (paper)", ConformanceConfig::paper()),
        (
            "levenshtein<=3",
            ConformanceConfig::paper().with_member_names(NameMatcher::Levenshtein(3)),
        ),
        (
            "token-subsequence (pragmatic)",
            ConformanceConfig::pragmatic(),
        ),
        (
            "wildcard members",
            ConformanceConfig::paper().with_member_names(NameMatcher::Wildcard),
        ),
    ] {
        let checker = ConformanceChecker::uncached(cfg);
        let start = Instant::now();
        let matched = variants
            .iter()
            .filter(|v| checker.conforms(&TypeDescription::from_def(&v.def), &idesc, &reg, &reg))
            .count();
        let us = start.elapsed().as_secs_f64() * 1e6 / variants.len() as f64;
        report.push(
            "A1",
            &format!("matcher {label}"),
            "stricter ⇒ fewer matches",
            format!("{matched}/200 matched, {us:.2} µs/check"),
            true,
        );
    }
}

fn a2_variance(report: &mut Report) {
    println!("\nA2  ablation D2 — argument variance (paper covariant vs strict)");
    use pti_metamodel::{ParamDef, TypeDef};
    // Generate method pairs with sub/supertyped arguments.
    let wide = TypeDef::class("Payload", "w")
        .field("len", pti_metamodel::primitives::INT32)
        .build();
    let narrow = TypeDef::class("Packet", "n")
        .field("len", pti_metamodel::primitives::INT32)
        .field("crc", pti_metamodel::primitives::INT32)
        .build();
    let want = TypeDef::class("Chan", "t")
        .method(
            "push",
            vec![ParamDef::new("p", "Payload")],
            pti_metamodel::primitives::VOID,
        )
        .build();
    let have_narrow = TypeDef::class("Chan", "s1")
        .method(
            "push",
            vec![ParamDef::new("p", "Packet")],
            pti_metamodel::primitives::VOID,
        )
        .build();
    let have_same = TypeDef::class("Chan", "s2")
        .method(
            "push",
            vec![ParamDef::new("p", "Payload")],
            pti_metamodel::primitives::VOID,
        )
        .build();
    let mut reg = TypeRegistry::with_builtins();
    for d in [&wide, &narrow, &want, &have_narrow, &have_same] {
        reg.register(d.clone()).unwrap();
    }
    let relaxed = ConformanceConfig::paper().with_type_names(NameMatcher::Levenshtein(7));
    let cov = ConformanceChecker::uncached(relaxed.clone());
    let strict =
        ConformanceChecker::uncached(relaxed.with_variance(pti_conformance::Variance::Strict));
    let wd = TypeDescription::from_def(&want);
    let narrow_ok_cov = cov.conforms(&TypeDescription::from_def(&have_narrow), &wd, &reg, &reg);
    let narrow_ok_strict =
        strict.conforms(&TypeDescription::from_def(&have_narrow), &wd, &reg, &reg);
    let same_ok_strict = strict.conforms(&TypeDescription::from_def(&have_same), &wd, &reg, &reg);
    report.push(
        "A2",
        "narrowed argument accepted?",
        "covariant yes / strict no",
        format!("covariant {narrow_ok_cov}, strict {narrow_ok_strict}"),
        narrow_ok_cov && !narrow_ok_strict,
    );
    report.push(
        "A2",
        "identical argument accepted under strict",
        "yes",
        format!("{same_ok_strict}"),
        same_ok_strict,
    );
}

fn a3_cache(report: &mut Report) {
    println!("\nA3  ablation D5 — conformance verdict caching");
    let f = conformance_fixture();
    let uncached = ConformanceChecker::uncached(ConformanceConfig::pragmatic());
    let u_us = time_us_per_op(50, 1000, || {
        let _ = uncached.check(&f.received, &f.expected, &f.registry, &f.registry);
    });
    let cached = ConformanceChecker::new(ConformanceConfig::pragmatic());
    let c_us = time_us_per_op(50, 1000, || {
        let _ = cached.check(&f.received, &f.expected, &f.registry, &f.registry);
    });
    let stats = cached.stats();
    report.push(
        "A3",
        "uncached vs cached repeat checks",
        "cache ⇒ O(1) repeats",
        format!(
            "{u_us:.3} vs {c_us:.3} µs/check ({:.0}x); {} hits / {} misses",
            u_us / c_us,
            stats.hits,
            stats.misses
        ),
        c_us < u_us,
    );
    // Recursive types require the coinductive hypothesis either way.
    let pa = TypeDef::class("Node", "a").field("next", "Node").build();
    let pb = TypeDef::class("Node", "b").field("next", "Node").build();
    let mut ra = TypeRegistry::with_builtins();
    ra.register(pa.clone()).unwrap();
    let mut rb = TypeRegistry::with_builtins();
    rb.register(pb.clone()).unwrap();
    let rec_ok = uncached.conforms(
        &TypeDescription::from_def(&pb),
        &TypeDescription::from_def(&pa),
        &rb,
        &ra,
    );
    report.push(
        "A3",
        "recursive type pair terminates & conforms",
        "coinductive treatment",
        format!("{rec_ok}"),
        rec_ok,
    );
}

fn a4_behavioral(report: &mut Report) {
    println!("\nA4  extension §4.1 — implicit behavioral conformance (strong conformance)");
    use pti_conformance::BehavioralTester;
    use pti_metamodel::bodies;
    use std::sync::Arc;

    let expected = TypeDef::class("Adder", "vendor-a")
        .field("acc", primitives::INT64)
        .method(
            "add",
            vec![ParamDef::new("x", primitives::INT64)],
            primitives::INT64,
        )
        .method("total", vec![], primitives::INT64)
        .ctor(vec![])
        .build();
    let make_received = |salt: &str, sign: i64| {
        let def = TypeDef::class("Adder", salt)
            .field("acc", primitives::INT64)
            .method(
                "addValue",
                vec![ParamDef::new("x", primitives::INT64)],
                primitives::INT64,
            )
            .method("totalValue", vec![], primitives::INT64)
            .ctor(vec![])
            .build();
        let g = def.guid;
        let asm = Assembly::builder(format!("adder-{salt}"))
            .ty(def.clone())
            .body(
                g,
                "addValue",
                1,
                Arc::new(move |rt: &mut Runtime, recv: Value, args: &[Value]| {
                    let h = recv.as_obj()?;
                    let acc = rt.get_field(h, "acc")?.as_i64()? + sign * args[0].as_i64()?;
                    rt.set_field(h, "acc", Value::I64(acc))?;
                    Ok(Value::I64(acc))
                }),
            )
            .body(g, "totalValue", 0, bodies::getter("acc"))
            .ctor_body(g, 0, bodies::ctor_assign(&[]))
            .build();
        (def, asm)
    };
    let eg = expected.guid;
    let exp_asm = Assembly::builder("adder-a")
        .ty(expected.clone())
        .body(
            eg,
            "add",
            1,
            Arc::new(|rt: &mut Runtime, recv: Value, args: &[Value]| {
                let h = recv.as_obj()?;
                let acc = rt.get_field(h, "acc")?.as_i64()? + args[0].as_i64()?;
                rt.set_field(h, "acc", Value::I64(acc))?;
                Ok(Value::I64(acc))
            }),
        )
        .body(eg, "total", 0, bodies::getter("acc"))
        .ctor_body(eg, 0, bodies::ctor_assign(&[]))
        .build();

    for (label, sign, expect_pass) in [
        ("faithful re-implementation", 1i64, true),
        ("structurally-identical impostor", -1, false),
    ] {
        let (received, asm) = make_received(&format!("vendor-{sign}"), sign);
        let mut rt = Runtime::new();
        exp_asm.install(&mut rt).unwrap();
        asm.install(&mut rt).unwrap();
        let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
        let conf = checker
            .check(
                &TypeDescription::from_def(&received),
                &TypeDescription::from_def(&expected),
                &rt.registry,
                &rt.registry,
            )
            .expect("structural pass");
        let binding = conf.binding(&TypeDescription::from_def(&expected));
        let start = Instant::now();
        let behav = BehavioralTester::default()
            .test(&mut rt, &received, &expected, &binding)
            .unwrap();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        report.push(
            "A4",
            &format!("strong conformance: {label}"),
            "behavioral check separates them",
            format!(
                "structural pass + behavioral {} ({} probes, {:.2} ms)",
                if behav.conformant() { "pass" } else { "FAIL" },
                behav.methods.iter().map(|m| m.probes).sum::<usize>() + behav.sequence_steps,
                ms
            ),
            behav.conformant() == expect_pass,
        );
    }
}

fn main() {
    println!("Pragmatic Type Interoperability — experiment harness");
    println!(
        "(paper numbers are 2002 hardware + .NET; ours are this machine + the Rust substrate;"
    );
    println!(
        " per DESIGN.md only the *shapes* — orderings, ratios, savings — are expected to hold)"
    );

    let mut report = Report { rows: Vec::new() };
    e1_invocation(&mut report);
    e2_typedesc(&mut report);
    e3_object_serde(&mut report);
    e4_conformance(&mut report);
    f1_protocol(&mut report);
    f3_serializers(&mut report);
    let routing_json = r1_routing(&mut report);
    let membership_json = r2_membership(&mut report);
    let (wirepath_json, livebus_eps) = r3_wirepath(&mut report);
    let reactor_json = r4_reactor(&mut report, livebus_eps);
    let shards_json = r5_shards(&mut report);
    let durability_json = r6_durability(&mut report);
    a1_name_matchers(&mut report);
    a2_variance(&mut report);
    a3_cache(&mut report);
    a4_behavioral(&mut report);

    let holds = report.rows.iter().filter(|r| r.shape_holds).count();
    println!(
        "\n{}/{} rows hold the paper's shape",
        holds,
        report.rows.len()
    );
    std::fs::write("experiments.json", rows_to_json(&report.rows)).expect("writable cwd");
    println!("wrote experiments.json");
    std::fs::write("BENCH_routing.json", stamp_schema(&routing_json)).expect("writable cwd");
    println!("wrote BENCH_routing.json");
    std::fs::write("BENCH_membership.json", stamp_schema(&membership_json)).expect("writable cwd");
    println!("wrote BENCH_membership.json");
    std::fs::write("BENCH_wirepath.json", stamp_schema(&wirepath_json)).expect("writable cwd");
    println!("wrote BENCH_wirepath.json");
    std::fs::write("BENCH_reactor.json", stamp_schema(&reactor_json)).expect("writable cwd");
    println!("wrote BENCH_reactor.json");
    std::fs::write("BENCH_shards.json", stamp_schema(&shards_json)).expect("writable cwd");
    println!("wrote BENCH_shards.json");
    std::fs::write("BENCH_durability.json", stamp_schema(&durability_json)).expect("writable cwd");
    println!("wrote BENCH_durability.json");
}
