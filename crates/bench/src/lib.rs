//! # pti-bench — benchmark fixtures
//!
//! Shared setup for the criterion benches and the `experiments` harness
//! binary that regenerates every measurement of the paper's Section 7
//! plus the protocol (F1) and ablation (A1–A3) experiments described in
//! DESIGN.md.

#![warn(missing_docs)]

use pti_core::prelude::*;
use pti_core::samples;

/// Fixture for the Section 7.1 invocation benchmark: a runtime holding a
/// vendor-b `Person`, the direct handle, and a proxy exposing vendor-a's
/// contract over it.
pub struct InvocationFixture {
    /// The runtime owning the object.
    pub runtime: Runtime,
    /// The raw object handle (direct-call baseline).
    pub handle: ObjHandle,
    /// The method body bound once — the analogue of a compiled call site
    /// (the paper's "direct invocation").
    pub bound_get: pti_metamodel::NativeFn,
    /// Proxy translating vendor-a names to vendor-b names.
    pub proxy: DynamicProxy,
    /// A pass-through proxy (identity binding) to isolate pure proxy
    /// overhead from name translation.
    pub transparent_proxy: DynamicProxy,
}

/// Builds the invocation fixture.
///
/// # Panics
/// On fixture construction failure (benchmarks only).
pub fn invocation_fixture() -> InvocationFixture {
    let a_def = samples::person_vendor_a();
    let b_def = samples::person_vendor_b();
    let mut runtime = Runtime::new();
    samples::person_assembly(&b_def)
        .install(&mut runtime)
        .unwrap();
    let handle = samples::make_person(&mut runtime, "bench")
        .as_obj()
        .unwrap();
    let bound_get = runtime
        .bind_method(b_def.guid, "getPersonName", 0)
        .expect("installed");
    let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
    let a_desc = TypeDescription::from_def(&a_def);
    let b_desc = TypeDescription::from_def(&b_def);
    let proxy = DynamicProxy::try_new(
        &a_desc,
        &b_desc,
        handle,
        &checker,
        &runtime.registry,
        &runtime.registry,
    )
    .unwrap();
    let transparent_proxy = DynamicProxy::try_new(
        &b_desc,
        &b_desc,
        handle,
        &checker,
        &runtime.registry,
        &runtime.registry,
    )
    .unwrap();
    InvocationFixture {
        runtime,
        handle,
        bound_get,
        proxy,
        transparent_proxy,
    }
}

/// Fixture for the serialization benchmarks (Sections 7.2/7.3): a runtime
/// with the paper's `Person` installed and an instance built, plus the
/// Figure-3 nested Person+Address object.
pub struct SerializationFixture {
    /// The runtime owning the objects.
    pub runtime: Runtime,
    /// The vendor-a `Person` description (Section 7.2 subject).
    pub description: TypeDescription,
    /// A simple `Person` instance (Section 7.3 subject).
    pub person: Value,
    /// A nested Person-with-Address instance (Figure 3 subject).
    pub nested: Value,
}

/// Builds the serialization fixture.
///
/// # Panics
/// On fixture construction failure (benchmarks only).
pub fn serialization_fixture() -> SerializationFixture {
    let a_def = samples::person_vendor_a();
    let mut runtime = Runtime::new();
    samples::person_assembly(&a_def)
        .install(&mut runtime)
        .unwrap();
    let person = samples::make_person(&mut runtime, "benchmark subject");

    let (_, _, asm) = samples::person_with_address("bench");
    asm.install(&mut runtime).unwrap();
    // The nested person: distinct type (same simple name, later vendor)
    // resolved by guid through instantiate_def.
    let nested_person_def = asm
        .types()
        .iter()
        .find(|t| t.name.simple() == "Person")
        .unwrap()
        .clone();
    let addr_def = asm
        .types()
        .iter()
        .find(|t| t.name.simple() == "Address")
        .unwrap()
        .clone();
    let ah = runtime.instantiate_def(&addr_def, &[]).unwrap();
    runtime
        .set_field(ah, "street", Value::from("Avenue de Rhodanie 46"))
        .unwrap();
    runtime.set_field(ah, "zip", Value::I32(1007)).unwrap();
    let ph = runtime.instantiate_def(&nested_person_def, &[]).unwrap();
    runtime
        .set_field(ph, "name", Value::from("figure three"))
        .unwrap();
    runtime.set_field(ph, "home", Value::Obj(ah)).unwrap();

    SerializationFixture {
        runtime,
        description: TypeDescription::from_def(&a_def),
        person,
        nested: Value::Obj(ph),
    }
}

/// Fixture for the Section 7.4 conformance benchmark: the two vendor
/// `Person` descriptions and a registry resolving their references.
pub struct ConformanceFixture {
    /// Registry resolving referenced types on both sides.
    pub registry: TypeRegistry,
    /// Vendor-a (expected/interest) description.
    pub expected: TypeDescription,
    /// Vendor-b (received) description.
    pub received: TypeDescription,
}

/// Builds the conformance fixture.
///
/// # Panics
/// On fixture construction failure (benchmarks only).
pub fn conformance_fixture() -> ConformanceFixture {
    let a = samples::person_vendor_a();
    let b = samples::person_vendor_b();
    let mut registry = TypeRegistry::with_builtins();
    registry.register(a.clone()).unwrap();
    registry.register(b.clone()).unwrap();
    ConformanceFixture {
        registry,
        expected: TypeDescription::from_def(&a),
        received: TypeDescription::from_def(&b),
    }
}

/// Result of one protocol run for experiment F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolOutcome {
    /// Total bytes on the wire.
    pub bytes: u64,
    /// Total messages on the wire.
    pub messages: u64,
    /// Final virtual clock (µs).
    pub virtual_us: u64,
    /// Objects accepted at the subscriber.
    pub accepted: u64,
    /// Objects rejected at the subscriber.
    pub rejected: u64,
}

/// Runs `objects` transfers drawn from a generated population with the
/// given conforming ratio over either protocol; reports traffic.
///
/// # Panics
/// On protocol failure (benchmarks only).
pub fn run_protocol(
    eager: bool,
    objects: usize,
    conforming_ratio: f64,
    distinct_types: usize,
    seed: u64,
) -> ProtocolOutcome {
    let mut swarm = Swarm::new(NetConfig::default());
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    let subscriber = swarm.add_peer(ConformanceConfig::pragmatic());
    let interest = samples::sensor_interest("subscriber");
    swarm
        .peer_mut(subscriber)
        .runtime
        .register_type(interest.clone())
        .unwrap();
    swarm
        .peer_mut(subscriber)
        .subscribe(TypeDescription::from_def(&interest));

    let variants = samples::generate_population(seed, distinct_types.max(1), conforming_ratio);
    for v in &variants {
        swarm.publish(publisher, v.assembly.clone()).unwrap();
    }
    for i in 0..objects {
        let v = &variants[i % variants.len()];
        let h = swarm
            .peer_mut(publisher)
            .runtime
            .instantiate_def(&v.def, &[])
            .unwrap();
        if eager {
            swarm
                .send_object_eager(publisher, subscriber, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap();
        } else {
            swarm
                .send_object(publisher, subscriber, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap();
        }
        swarm.run().unwrap();
    }
    let m = swarm.net().metrics();
    let stats = swarm.peer(subscriber).stats;
    ProtocolOutcome {
        bytes: m.bytes,
        messages: m.messages,
        virtual_us: swarm.net().now_us(),
        accepted: stats.accepted,
        rejected: stats.rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_work() {
        let mut f = invocation_fixture();
        let direct = invoke_direct(&mut f.runtime, f.handle, "getPersonName", &[]).unwrap();
        let proxied = f.proxy.invoke(&mut f.runtime, "getName", &[]).unwrap();
        assert_eq!(direct, proxied);
        assert!(f.transparent_proxy.is_transparent());
        assert!(!f.proxy.is_transparent());
    }

    #[test]
    fn serialization_fixture_roundtrips() {
        let mut f = serialization_fixture();
        let xml = to_soap_string(&f.runtime, &f.person).unwrap();
        assert!(from_soap_string(&mut f.runtime, &xml).is_ok());
        let nested_xml = to_soap_string(&f.runtime, &f.nested).unwrap();
        assert!(nested_xml.contains("Avenue"));
    }

    #[test]
    fn protocol_outcomes_reflect_ratio() {
        let all = run_protocol(false, 10, 1.0, 5, 1);
        assert_eq!(all.accepted, 10);
        assert_eq!(all.rejected, 0);
        let none = run_protocol(false, 10, 0.0, 5, 1);
        assert_eq!(none.accepted, 0);
        assert_eq!(none.rejected, 10);
        assert!(
            none.bytes < all.bytes,
            "rejected objects skip code downloads"
        );
    }

    #[test]
    fn eager_vs_optimistic_direction() {
        let opt = run_protocol(false, 30, 0.5, 6, 2);
        let eag = run_protocol(true, 30, 0.5, 6, 2);
        assert_eq!(opt.accepted + opt.rejected, 30);
        assert!(opt.bytes < eag.bytes);
        // Eager accepts everything (code always present).
        assert_eq!(eag.accepted, 30);
    }
}
