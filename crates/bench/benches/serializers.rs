//! F3 — Figure 3 + the paper's "indirect evaluation" of the XML / SOAP /
//! binary serialization mechanisms.
//!
//! Times the three formats on the same objects; the size comparison
//! (bytes per format, envelope overhead) is produced by the `experiments`
//! harness (rows F3-*).

use criterion::{criterion_group, criterion_main, Criterion};
use pti_bench::serialization_fixture;
use pti_metamodel::TypeDescription;
use pti_serialize::{description_to_string, to_binary, to_soap_string, ObjectEnvelope, Payload};
use std::hint::black_box;

fn bench_serializers(c: &mut Criterion) {
    let mut group = c.benchmark_group("serializers");

    // XML: the type-description path.
    let def = pti_core::samples::person_vendor_a();
    group.bench_function("xml: Person type description", |b| {
        b.iter(|| {
            let d = TypeDescription::from_def(black_box(&def));
            black_box(description_to_string(&d))
        })
    });

    // SOAP and binary: the object payload paths.
    let f = serialization_fixture();
    group.bench_function("soap: Person object", |b| {
        b.iter(|| black_box(to_soap_string(&f.runtime, &f.person).unwrap()))
    });
    group.bench_function("binary: Person object", |b| {
        b.iter(|| black_box(to_binary(&f.runtime, &f.person).unwrap()))
    });

    // The full hybrid envelope of Figure 3 (XML + embedded payload).
    let f = serialization_fixture();
    group.bench_function("hybrid envelope: build + render (binary payload)", |b| {
        b.iter(|| {
            let env = ObjectEnvelope {
                type_name: "Person".into(),
                type_guid: def.guid,
                assemblies: vec![],
                payload: Payload::Binary(to_binary(&f.runtime, &f.person).unwrap()),
            };
            black_box(env.to_string_compact())
        })
    });
    let env = ObjectEnvelope {
        type_name: "Person".into(),
        type_guid: def.guid,
        assemblies: vec![],
        payload: Payload::Binary(to_binary(&f.runtime, &f.person).unwrap()),
    };
    let wire = env.to_string_compact();
    group.bench_function("hybrid envelope: parse (binary payload)", |b| {
        b.iter(|| black_box(ObjectEnvelope::from_string(black_box(&wire)).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_serializers);
criterion_main!(benches);
