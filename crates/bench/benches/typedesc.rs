//! E2 — Section 7.2: creation + serialization and deserialization of a
//! `Person` type description.
//!
//! Paper: create+serialize ≈ 6.14 ms, deserialize ≈ 2.34 ms per 1000
//! operations — serialization is the slower direction. The shape to
//! reproduce: building the description (introspection) plus writing XML
//! costs more than parsing it back.

use criterion::{criterion_group, criterion_main, Criterion};
use pti_core::samples;
use pti_metamodel::TypeDescription;
use pti_serialize::{description_from_string, description_to_string};
use std::hint::black_box;

fn bench_typedesc(c: &mut Criterion) {
    let mut group = c.benchmark_group("typedesc");

    let def = samples::person_vendor_a();
    group.bench_function("create+serialize Person description", |b| {
        b.iter(|| {
            // "Creation" is introspection over the type definition, as in
            // the paper's use of .NET reflection.
            let desc = TypeDescription::from_def(black_box(&def));
            black_box(description_to_string(&desc))
        })
    });

    let xml = description_to_string(&TypeDescription::from_def(&def));
    group.bench_function("deserialize Person description", |b| {
        b.iter(|| black_box(description_from_string(black_box(&xml)).unwrap()))
    });

    // A larger description, to show the cost scales with member count.
    let (_, big, _) = samples::person_with_address("bench");
    let big_xml = description_to_string(&TypeDescription::from_def(&big));
    group.bench_function("create+serialize nested-Person description", |b| {
        b.iter(|| {
            let desc = TypeDescription::from_def(black_box(&big));
            black_box(description_to_string(&desc))
        })
    });
    group.bench_function("deserialize nested-Person description", |b| {
        b.iter(|| black_box(description_from_string(black_box(&big_xml)).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_typedesc);
criterion_main!(benches);
