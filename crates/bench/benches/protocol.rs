//! F1 — Figure 1: the optimistic transport protocol vs the eager
//! ship-everything baseline.
//!
//! The paper claims the protocol "saves network resources" by sending
//! type descriptions and code only when needed. This bench measures
//! wall-clock protocol-engine time for representative workloads; the
//! byte-level comparison (the primary result) is produced by the
//! `experiments` harness (rows F1-*), since bytes are deterministic and
//! not a timing quantity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pti_bench::run_protocol;
use std::hint::black_box;

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(20);

    for ratio in [0.0, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("optimistic 20 objects, conforming", format!("{ratio}")),
            &ratio,
            |b, &r| b.iter(|| black_box(run_protocol(false, 20, r, 5, 42))),
        );
        group.bench_with_input(
            BenchmarkId::new("eager 20 objects, conforming", format!("{ratio}")),
            &ratio,
            |b, &r| b.iter(|| black_box(run_protocol(true, 20, r, 5, 42))),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
