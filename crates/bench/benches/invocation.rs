//! E1 — Section 7.1: invocation time, direct vs dynamic proxy.
//!
//! Paper: direct ≈ 0.000142 ms, proxied ≈ 0.03 ms (~211× slower). Our
//! absolute numbers differ (dynamic dispatch through a HashMap-backed
//! runtime, 2026 hardware) but the *direction* — the proxy pays a clear
//! multiple over the direct call — must reproduce.

use criterion::{criterion_group, criterion_main, Criterion};
use pti_bench::invocation_fixture;
use pti_proxy::invoke_direct;
use std::hint::black_box;

fn bench_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("invocation");

    let mut f = invocation_fixture();
    let bound = std::sync::Arc::clone(&f.bound_get);
    let recv = pti_metamodel::Value::Obj(f.handle);
    group.bench_function("direct getPersonName() [bound call site]", |b| {
        b.iter(|| black_box(bound(&mut f.runtime, recv.clone(), &[]).unwrap()))
    });

    let mut f = invocation_fixture();
    group.bench_function("direct getPersonName() [dynamic dispatch]", |b| {
        b.iter(|| {
            black_box(
                invoke_direct(&mut f.runtime, f.handle, "getPersonName", &[]).unwrap(),
            )
        })
    });

    let mut f = invocation_fixture();
    group.bench_function("proxy getName() [translating]", |b| {
        b.iter(|| black_box(f.proxy.invoke(&mut f.runtime, "getName", &[]).unwrap()))
    });

    let mut f = invocation_fixture();
    group.bench_function("proxy getPersonName() [transparent]", |b| {
        b.iter(|| {
            black_box(
                f.transparent_proxy
                    .invoke(&mut f.runtime, "getPersonName", &[])
                    .unwrap(),
            )
        })
    });

    // Setter with one argument (includes the reorder path).
    let mut f = invocation_fixture();
    let arg = [pti_metamodel::Value::from("renamed")];
    group.bench_function("proxy setName(String) [translating]", |b| {
        b.iter(|| black_box(f.proxy.invoke(&mut f.runtime, "setName", &arg).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_invocation);
criterion_main!(benches);
