//! E3 — Section 7.3: serialization and deserialization of a `Person`
//! instance.
//!
//! Paper (SOAP formatter): serialize ≈ 16.68 ms, deserialize ≈ 1.32 ms
//! per 1000 operations — serialization much slower ("creating a SOAP
//! structure from an object is more complex than the opposite"). We also
//! measure the binary formatter for the indirect-serializer-evaluation
//! comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use pti_bench::serialization_fixture;
use pti_serialize::{from_binary, from_soap_string, to_binary, to_soap_string};
use std::hint::black_box;

fn bench_object_serde(c: &mut Criterion) {
    let mut group = c.benchmark_group("object_serde");

    let f = serialization_fixture();
    group.bench_function("soap serialize Person", |b| {
        b.iter(|| black_box(to_soap_string(&f.runtime, &f.person).unwrap()))
    });

    let mut f = serialization_fixture();
    let soap = to_soap_string(&f.runtime, &f.person).unwrap();
    group.bench_function("soap deserialize Person", |b| {
        b.iter(|| {
            let v = black_box(from_soap_string(&mut f.runtime, black_box(&soap)).unwrap());
            if let Ok(h) = v.as_obj() {
                let _ = f.runtime.heap.free(h);
            }
        })
    });

    let f = serialization_fixture();
    group.bench_function("binary serialize Person", |b| {
        b.iter(|| black_box(to_binary(&f.runtime, &f.person).unwrap()))
    });

    let mut f = serialization_fixture();
    let bin = to_binary(&f.runtime, &f.person).unwrap();
    group.bench_function("binary deserialize Person", |b| {
        b.iter(|| {
            let v = black_box(from_binary(&mut f.runtime, black_box(&bin)).unwrap());
            if let Ok(h) = v.as_obj() {
                let _ = f.runtime.heap.free(h);
            }
        })
    });

    // Figure 3's nested object (A containing B).
    let f = serialization_fixture();
    group.bench_function("soap serialize nested Person+Address", |b| {
        b.iter(|| black_box(to_soap_string(&f.runtime, &f.nested).unwrap()))
    });
    let mut f = serialization_fixture();
    let nested_soap = to_soap_string(&f.runtime, &f.nested).unwrap();
    group.bench_function("soap deserialize nested Person+Address", |b| {
        b.iter(|| black_box(from_soap_string(&mut f.runtime, black_box(&nested_soap)).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_object_serde);
criterion_main!(benches);
