//! E4 — Section 7.4: the cost of verifying the implicit structural
//! conformance rules.
//!
//! Paper: ≈ 12.66 ms per 1000 verifications (~12.7 µs/check) on "very
//! simple types", called "in some sense, a lower bound". We measure the
//! uncached check (the paper's number), the cached re-check (our D5
//! optimization), and the scaling with member count.

use criterion::{criterion_group, criterion_main, Criterion};
use pti_bench::conformance_fixture;
use pti_conformance::{ConformanceChecker, ConformanceConfig};
use pti_core::samples;
use pti_metamodel::{TypeDescription, TypeRegistry};
use std::hint::black_box;

fn bench_conformance(c: &mut Criterion) {
    let mut group = c.benchmark_group("conformance");

    let f = conformance_fixture();
    group.bench_function("uncached Person check (paper §7.4)", |b| {
        let checker = ConformanceChecker::uncached(ConformanceConfig::pragmatic());
        b.iter(|| {
            black_box(checker.check(
                black_box(&f.received),
                black_box(&f.expected),
                &f.registry,
                &f.registry,
            ))
        })
    });

    group.bench_function("cached Person re-check (D5)", |b| {
        let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
        // Warm the cache once.
        let _ = checker.check(&f.received, &f.expected, &f.registry, &f.registry);
        b.iter(|| {
            black_box(checker.check(
                black_box(&f.received),
                black_box(&f.expected),
                &f.registry,
                &f.registry,
            ))
        })
    });

    group.bench_function("uncached non-conformant rejection", |b| {
        let checker = ConformanceChecker::uncached(ConformanceConfig::pragmatic());
        let mut reg = TypeRegistry::with_builtins();
        let alien = pti_metamodel::TypeDef::class("Alien", "x").build();
        reg.register(alien.clone()).unwrap();
        let alien_desc = TypeDescription::from_def(&alien);
        b.iter(|| {
            black_box(checker.check(
                black_box(&alien_desc),
                black_box(&f.expected),
                &reg,
                &reg,
            ))
        })
    });

    // Scaling with structure: the generated SensorReading pair.
    let interest = samples::sensor_interest("t");
    let variant = &samples::generate_population(9, 1, 1.0)[0];
    let mut reg = TypeRegistry::with_builtins();
    reg.register(interest.clone()).unwrap();
    reg.register(variant.def.clone()).unwrap();
    let idesc = TypeDescription::from_def(&interest);
    let vdesc = TypeDescription::from_def(&variant.def);
    group.bench_function("uncached SensorReading check (permuted args)", |b| {
        let checker = ConformanceChecker::uncached(ConformanceConfig::pragmatic());
        b.iter(|| black_box(checker.check(black_box(&vdesc), black_box(&idesc), &reg, &reg)))
    });

    group.finish();
}

criterion_group!(benches, bench_conformance);
criterion_main!(benches);
