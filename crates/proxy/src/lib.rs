//! # pti-proxy — dynamic proxies over conformant objects
//!
//! The paper interposes dynamic proxies (à la .NET `RealProxy` / Java
//! `java.lang.reflect.Proxy`) whenever a received object's type `T'` only
//! *implicitly* conforms to the expected type `T`: the caller programs
//! against `T`, the proxy translates each invocation to `T'` — possibly
//! under a different method name and argument order — using the
//! [`ConformanceBinding`] produced by the checker.
//!
//! The overhead of this indirection versus a direct invocation is the
//! paper's Section 7.1 measurement (`pti-bench`'s `invocation` bench).
//!
//! ## Example
//!
//! ```
//! use pti_metamodel::{Assembly, Runtime, TypeDef, TypeDescription, Value, bodies, primitives};
//! use pti_conformance::{ConformanceChecker, ConformanceConfig};
//! use pti_proxy::DynamicProxy;
//!
//! // Expected contract (vendor A) and received implementation (vendor B).
//! let expected = TypeDef::class("Person", "vendor-a")
//!     .field("name", primitives::STRING)
//!     .method("getName", vec![], primitives::STRING)
//!     .build();
//! let received = TypeDef::class("Person", "vendor-b")
//!     .field("name", primitives::STRING)
//!     .method("getPersonName", vec![], primitives::STRING)
//!     .ctor(vec![])
//!     .build();
//! let g = received.guid;
//!
//! let mut rt = Runtime::new();
//! Assembly::builder("b")
//!     .ty(received.clone())
//!     .body(g, "getPersonName", 0, bodies::getter("name"))
//!     .build()
//!     .install(&mut rt)?;
//! let obj = rt.instantiate(&"Person".into(), &[])?;
//! rt.set_field(obj, "name", Value::from("ada"))?;
//!
//! let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
//! let proxy = DynamicProxy::try_new(
//!     &TypeDescription::from_def(&expected),
//!     &TypeDescription::from_def(&received),
//!     obj,
//!     &checker,
//!     &rt.registry,
//!     &rt.registry,
//! )?;
//! // Caller speaks vendor A's contract; the proxy translates.
//! assert_eq!(proxy.invoke(&mut rt, "getName", &[])?.as_str()?, "ada");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

use std::fmt;

use pti_conformance::{Conformance, ConformanceBinding, ConformanceChecker, NonConformance};
use pti_metamodel::{
    DescriptionProvider, MetamodelError, ObjHandle, Runtime, TypeDescription, Value,
};

/// Errors raised by proxy construction or dispatch.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxyError {
    /// The received type does not conform to the expected type.
    NotConformant(NonConformance),
    /// The invoked method is not part of the expected type's contract
    /// (proxies enforce the *expected* interface, never the wider actual
    /// one — that is what keeps the substitution type-safe).
    NotInContract {
        /// Requested method name.
        method: String,
        /// Requested arity.
        arity: usize,
    },
    /// A field access is not part of the expected type's contract.
    FieldNotInContract(String),
    /// The underlying runtime rejected the translated call.
    Runtime(MetamodelError),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotConformant(nc) => write!(f, "{nc}"),
            Self::NotInContract { method, arity } => {
                write!(
                    f,
                    "method `{method}/{arity}` is not in the expected type's contract"
                )
            }
            Self::FieldNotInContract(name) => {
                write!(f, "field `{name}` is not in the expected type's contract")
            }
            Self::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<MetamodelError> for ProxyError {
    fn from(e: MetamodelError) -> Self {
        ProxyError::Runtime(e)
    }
}

impl From<NonConformance> for ProxyError {
    fn from(e: NonConformance) -> Self {
        ProxyError::NotConformant(e)
    }
}

/// Result alias for proxy operations.
pub type Result<T> = std::result::Result<T, ProxyError>;

/// A dynamic proxy exposing an expected type `T` over an object whose
/// actual type `T'` merely conforms to `T`.
///
/// The proxy owns the translation table; the object itself stays in the
/// runtime's heap (the proxy is cheap to clone and pass around, like the
/// transparent proxies .NET remoting hands out).
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicProxy {
    expected: TypeDescription,
    binding: ConformanceBinding,
    handle: ObjHandle,
}

impl DynamicProxy {
    /// Builds a proxy by running the conformance check.
    ///
    /// # Errors
    /// [`ProxyError::NotConformant`] when `actual` fails the check
    /// against `expected`.
    pub fn try_new(
        expected: &TypeDescription,
        actual: &TypeDescription,
        handle: ObjHandle,
        checker: &ConformanceChecker,
        src_provider: &dyn DescriptionProvider,
        tgt_provider: &dyn DescriptionProvider,
    ) -> Result<DynamicProxy> {
        let conf = checker.check(actual, expected, src_provider, tgt_provider)?;
        Ok(Self::from_conformance(expected, &conf, handle))
    }

    /// Builds a proxy from an already-established conformance result
    /// (e.g. one the transport protocol cached).
    pub fn from_conformance(
        expected: &TypeDescription,
        conformance: &Conformance,
        handle: ObjHandle,
    ) -> DynamicProxy {
        DynamicProxy {
            expected: expected.clone(),
            binding: conformance.binding(expected),
            handle,
        }
    }

    /// Builds a proxy from an explicit binding.
    pub fn from_binding(
        expected: &TypeDescription,
        binding: ConformanceBinding,
        handle: ObjHandle,
    ) -> DynamicProxy {
        DynamicProxy {
            expected: expected.clone(),
            binding,
            handle,
        }
    }

    /// The wrapped object.
    pub fn handle(&self) -> ObjHandle {
        self.handle
    }

    /// The expected (exposed) type description.
    pub fn expected(&self) -> &TypeDescription {
        &self.expected
    }

    /// The translation table in use.
    pub fn binding(&self) -> &ConformanceBinding {
        &self.binding
    }

    /// Whether this proxy is a pure pass-through (identity binding) —
    /// the case for identical, explicit and equivalent conformance.
    pub fn is_transparent(&self) -> bool {
        self.binding.is_identity()
    }

    /// Invokes a method *of the expected contract* on the wrapped object,
    /// translating name and argument order.
    ///
    /// # Errors
    /// [`ProxyError::NotInContract`] for methods outside `T`'s contract,
    /// or any runtime dispatch error.
    pub fn invoke(&self, rt: &mut Runtime, method: &str, args: &[Value]) -> Result<Value> {
        let mb =
            self.binding
                .method(method, args.len())
                .ok_or_else(|| ProxyError::NotInContract {
                    method: method.to_string(),
                    arity: args.len(),
                })?;
        let actual_args = mb.reorder(args);
        Ok(rt.invoke(self.handle, &mb.actual_name, &actual_args)?)
    }

    /// Reads a field of the expected contract through the field binding.
    pub fn get_field(&self, rt: &Runtime, field: &str) -> Result<Value> {
        let fb = self
            .binding
            .field(field)
            .ok_or_else(|| ProxyError::FieldNotInContract(field.to_string()))?;
        Ok(rt.get_field(self.handle, &fb.actual_name)?)
    }

    /// Writes a field of the expected contract through the field binding.
    pub fn set_field(&self, rt: &mut Runtime, field: &str, value: Value) -> Result<()> {
        let fb = self
            .binding
            .field(field)
            .ok_or_else(|| ProxyError::FieldNotInContract(field.to_string()))?;
        Ok(rt.set_field(self.handle, &fb.actual_name, value)?)
    }
}

/// Direct (unproxied) invocation — the baseline of the Section 7.1
/// comparison. Exists so benches call the two paths through the same
/// shaped API.
///
/// # Errors
/// Any runtime dispatch error (unknown method, missing body, …).
pub fn invoke_direct(
    rt: &mut Runtime,
    handle: ObjHandle,
    method: &str,
    args: &[Value],
) -> std::result::Result<Value, MetamodelError> {
    rt.invoke(handle, method, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_conformance::ConformanceConfig;
    use pti_metamodel::{bodies, primitives, Assembly, ParamDef, TypeDef, Value, CTOR_NAME};

    /// Vendor A's contract and vendor B's differently-named implementation.
    fn setup() -> (Runtime, TypeDescription, TypeDescription, ObjHandle) {
        let expected = TypeDef::class("Person", "vendor-a")
            .field("name", primitives::STRING)
            .method("getName", vec![], primitives::STRING)
            .method(
                "setName",
                vec![ParamDef::new("n", primitives::STRING)],
                primitives::VOID,
            )
            .method(
                "tag",
                vec![
                    ParamDef::new("label", primitives::STRING),
                    ParamDef::new("num", primitives::INT32),
                ],
                primitives::STRING,
            )
            .ctor(vec![])
            .build();
        let received = TypeDef::class("Person", "vendor-b")
            .field("name", primitives::STRING)
            .method("getPersonName", vec![], primitives::STRING)
            .method(
                "setPersonName",
                vec![ParamDef::new("n", primitives::STRING)],
                primitives::VOID,
            )
            .method(
                "tagPerson",
                vec![
                    ParamDef::new("num", primitives::INT32),
                    ParamDef::new("label", primitives::STRING),
                ],
                primitives::STRING,
            )
            .ctor(vec![])
            .build();
        let g = received.guid;
        let mut rt = Runtime::new();
        Assembly::builder("vendor-b")
            .ty(received.clone())
            .body(g, "getPersonName", 0, bodies::getter("name"))
            .body(g, "setPersonName", 1, bodies::setter("name"))
            .body(
                g,
                "tagPerson",
                2,
                std::sync::Arc::new(|_rt: &mut Runtime, _recv, args: &[Value]| {
                    let num = args[0].as_i32()?;
                    let label = args[1].as_str()?;
                    Ok(Value::from(format!("{label}#{num}")))
                }),
            )
            .body(g, CTOR_NAME, 0, bodies::ctor_assign(&[]))
            .build()
            .install(&mut rt)
            .unwrap();
        let h = rt.instantiate(&"Person".into(), &[]).unwrap();
        rt.set_field(h, "name", Value::from("ada")).unwrap();
        (
            rt,
            TypeDescription::from_def(&expected),
            TypeDescription::from_def(&received),
            h,
        )
    }

    fn proxy_for(
        rt: &Runtime,
        exp: &TypeDescription,
        act: &TypeDescription,
        h: ObjHandle,
    ) -> DynamicProxy {
        let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
        DynamicProxy::try_new(exp, act, h, &checker, &rt.registry, &rt.registry).unwrap()
    }

    #[test]
    fn translates_method_names() {
        let (mut rt, exp, act, h) = setup();
        let p = proxy_for(&rt, &exp, &act, h);
        assert_eq!(
            p.invoke(&mut rt, "getName", &[]).unwrap().as_str().unwrap(),
            "ada"
        );
        p.invoke(&mut rt, "setName", &[Value::from("grace")])
            .unwrap();
        assert_eq!(
            p.invoke(&mut rt, "getName", &[]).unwrap().as_str().unwrap(),
            "grace"
        );
    }

    #[test]
    fn translates_argument_order() {
        let (mut rt, exp, act, h) = setup();
        let p = proxy_for(&rt, &exp, &act, h);
        // Caller uses vendor A's order (label, num); implementation takes
        // (num, label).
        let out = p
            .invoke(&mut rt, "tag", &[Value::from("v"), Value::I32(7)])
            .unwrap();
        assert_eq!(out.as_str().unwrap(), "v#7");
    }

    #[test]
    fn enforces_expected_contract_only() {
        let (mut rt, exp, act, h) = setup();
        let p = proxy_for(&rt, &exp, &act, h);
        // The *actual* method name is hidden behind the contract.
        assert!(matches!(
            p.invoke(&mut rt, "getPersonName", &[]),
            Err(ProxyError::NotInContract { .. })
        ));
        assert!(
            matches!(
                p.invoke(&mut rt, "getName", &[Value::Null]),
                Err(ProxyError::NotInContract { .. }),
            ),
            "wrong arity is out of contract too"
        );
    }

    #[test]
    fn field_access_through_binding() {
        let (mut rt, exp, act, h) = setup();
        let p = proxy_for(&rt, &exp, &act, h);
        assert_eq!(p.get_field(&rt, "name").unwrap().as_str().unwrap(), "ada");
        p.set_field(&mut rt, "name", Value::from("lin")).unwrap();
        assert_eq!(p.get_field(&rt, "name").unwrap().as_str().unwrap(), "lin");
        assert!(matches!(
            p.get_field(&rt, "age"),
            Err(ProxyError::FieldNotInContract(_))
        ));
    }

    #[test]
    fn nonconformant_pair_cannot_be_proxied() {
        let (rt, exp, _, h) = setup();
        let alien = TypeDescription::from_def(&TypeDef::class("Alien", "x").build());
        let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
        let err = DynamicProxy::try_new(&exp, &alien, h, &checker, &rt.registry, &rt.registry)
            .unwrap_err();
        assert!(matches!(err, ProxyError::NotConformant(_)));
    }

    #[test]
    fn identity_conformance_gives_transparent_proxy() {
        let (rt, _, act, h) = setup();
        let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
        let p = DynamicProxy::try_new(&act, &act, h, &checker, &rt.registry, &rt.registry).unwrap();
        assert!(p.is_transparent());
    }

    #[test]
    fn renamed_binding_is_not_transparent() {
        let (rt, exp, act, h) = setup();
        let p = proxy_for(&rt, &exp, &act, h);
        assert!(!p.is_transparent());
    }

    #[test]
    fn direct_invocation_baseline_works() {
        let (mut rt, _, _, h) = setup();
        let v = invoke_direct(&mut rt, h, "getPersonName", &[]).unwrap();
        assert_eq!(v.as_str().unwrap(), "ada");
    }

    #[test]
    fn proxy_and_direct_agree() {
        let (mut rt, exp, act, h) = setup();
        let p = proxy_for(&rt, &exp, &act, h);
        let via_proxy = p.invoke(&mut rt, "getName", &[]).unwrap();
        let direct = invoke_direct(&mut rt, h, "getPersonName", &[]).unwrap();
        assert_eq!(via_proxy, direct);
    }
}
