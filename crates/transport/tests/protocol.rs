//! End-to-end tests of the optimistic protocol and its eager baseline.

use pti_conformance::ConformanceConfig;
use pti_metamodel::{bodies, primitives, Assembly, ParamDef, TypeDef, TypeDescription, Value};
use pti_net::NetConfig;
use pti_serialize::PayloadFormat;
use pti_transport::{kinds, Delivery, Swarm};

/// An assembly publishing a `Person` type with vendor-specific method
/// names.
fn person_assembly(salt: &str, get: &str, set: &str) -> (Assembly, TypeDef) {
    let def = TypeDef::class("Person", salt)
        .field("name", primitives::STRING)
        .method(get, vec![], primitives::STRING)
        .method(
            set,
            vec![ParamDef::new("n", primitives::STRING)],
            primitives::VOID,
        )
        .ctor(vec![])
        .build();
    let g = def.guid;
    let asm = Assembly::builder(format!("person-{salt}"))
        .ty(def.clone())
        .body(g, get, 0, bodies::getter("name"))
        .body(g, set, 1, bodies::setter("name"))
        .ctor_body(g, 0, bodies::ctor_assign(&[]))
        .build();
    (asm, def)
}

fn alien_assembly() -> (Assembly, TypeDef) {
    let def = TypeDef::class("Spaceship", "zorg")
        .field("fuel", primitives::INT64)
        .method("warp", vec![], primitives::VOID)
        .ctor(vec![])
        .build();
    let g = def.guid;
    let asm = Assembly::builder("zorg-ship")
        .ty(def.clone())
        .body(g, "warp", 0, bodies::constant(Value::Null))
        .ctor_body(g, 0, bodies::ctor_assign(&[]))
        .build();
    (asm, def)
}

struct Fixture {
    swarm: Swarm,
    alice: pti_net::PeerId,
    bob: pti_net::PeerId,
}

/// Alice publishes vendor-a Person; Bob knows vendor-b Person and
/// subscribes to it.
fn fixture() -> Fixture {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());
    let (asm_a, _) = person_assembly("vendor-a", "getName", "setName");
    swarm.publish(alice, asm_a).unwrap();
    let (asm_b, def_b) = person_assembly("vendor-b", "getPersonName", "setPersonName");
    swarm.publish(bob, asm_b).unwrap();
    swarm
        .peer_mut(bob)
        .subscribe(TypeDescription::from_def(&def_b));
    Fixture { swarm, alice, bob }
}

fn make_person(swarm: &mut Swarm, peer: pti_net::PeerId, name: &str) -> Value {
    let rt = &mut swarm.peer_mut(peer).runtime;
    let h = rt.instantiate(&"Person".into(), &[]).unwrap();
    rt.set_field(h, "name", Value::from(name)).unwrap();
    Value::Obj(h)
}

#[test]
fn full_optimistic_exchange_with_proxy() {
    let Fixture {
        mut swarm,
        alice,
        bob,
    } = fixture();
    let v = make_person(&mut swarm, alice, "ada");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();

    let deliveries = swarm.peer_mut(bob).take_deliveries();
    assert_eq!(deliveries.len(), 1);
    let Delivery::Accepted {
        interest,
        proxy,
        value,
        ..
    } = &deliveries[0]
    else {
        panic!("expected acceptance, got {deliveries:?}");
    };
    assert_eq!(interest.as_ref().unwrap().full(), "Person");
    assert!(value.as_obj().is_ok());
    // Bob invokes through *his* contract name; Alice's object answers.
    let proxy = proxy.as_ref().unwrap();
    let got = proxy
        .invoke(&mut swarm.peer_mut(bob).runtime, "getPersonName", &[])
        .unwrap();
    assert_eq!(got.as_str().unwrap(), "ada");
}

#[test]
fn protocol_fetches_description_then_code() {
    let Fixture {
        mut swarm,
        alice,
        bob,
    } = fixture();
    let v = make_person(&mut swarm, alice, "x");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let m = swarm.net().metrics();
    assert_eq!(m.kind(kinds::OBJECT).messages, 1);
    assert_eq!(m.kind(kinds::DESC_REQUEST).messages, 1);
    assert_eq!(m.kind(kinds::DESC_RESPONSE).messages, 1);
    assert_eq!(m.kind(kinds::ASM_REQUEST).messages, 1);
    assert_eq!(m.kind(kinds::ASM_RESPONSE).messages, 1);
    let stats = swarm.peer(bob).stats;
    assert_eq!(stats.desc_requests, 1);
    assert_eq!(stats.asm_requests, 1);
    assert_eq!(stats.accepted, 1);
}

#[test]
fn second_object_of_same_type_skips_all_fetches() {
    let Fixture {
        mut swarm,
        alice,
        bob,
    } = fixture();
    let v1 = make_person(&mut swarm, alice, "first");
    swarm
        .send_object(alice, bob, &v1, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    swarm.reset_metrics();

    let v2 = make_person(&mut swarm, alice, "second");
    swarm
        .send_object(alice, bob, &v2, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let m = swarm.net().metrics();
    assert_eq!(m.kind(kinds::OBJECT).messages, 1);
    assert_eq!(
        m.kind(kinds::DESC_REQUEST).messages,
        0,
        "description cached"
    );
    assert_eq!(m.kind(kinds::ASM_REQUEST).messages, 0, "code installed");
    let ds = swarm.peer_mut(bob).take_deliveries();
    assert_eq!(ds.len(), 2);
    assert!(ds.iter().all(Delivery::is_accepted));
}

#[test]
fn nonconformant_object_rejected_without_code_download() {
    let Fixture {
        mut swarm,
        alice,
        bob,
    } = fixture();
    let (alien_asm, _) = alien_assembly();
    swarm.publish(alice, alien_asm).unwrap();
    let rt = &mut swarm.peer_mut(alice).runtime;
    let ship = rt.instantiate(&"Spaceship".into(), &[]).unwrap();
    swarm
        .send_object(alice, bob, &Value::Obj(ship), PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();

    let ds = swarm.peer_mut(bob).take_deliveries();
    assert_eq!(ds.len(), 1);
    assert!(
        matches!(&ds[0], Delivery::Rejected { type_name, .. } if type_name.full() == "Spaceship")
    );
    let m = swarm.net().metrics();
    assert_eq!(
        m.kind(kinds::DESC_REQUEST).messages,
        1,
        "description was fetched"
    );
    assert_eq!(
        m.kind(kinds::ASM_REQUEST).messages,
        0,
        "the optimistic saving: no code transfer for rejected types"
    );
    assert_eq!(swarm.peer(bob).stats.rejected, 1);
}

#[test]
fn eager_baseline_ships_everything_every_time() {
    let Fixture {
        mut swarm,
        alice,
        bob,
    } = fixture();
    let v1 = make_person(&mut swarm, alice, "a");
    let v2 = make_person(&mut swarm, alice, "b");
    swarm
        .send_object_eager(alice, bob, &v1, PayloadFormat::Binary)
        .unwrap();
    swarm
        .send_object_eager(alice, bob, &v2, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    assert_eq!(ds.len(), 2);
    assert!(ds.iter().all(Delivery::is_accepted));
    let eager_bytes = swarm.net().metrics().kind(kinds::EAGER_OBJECT).bytes;

    // The same two transfers under the optimistic protocol.
    let Fixture {
        mut swarm,
        alice,
        bob,
    } = fixture();
    let v1 = make_person(&mut swarm, alice, "a");
    let v2 = make_person(&mut swarm, alice, "b");
    swarm
        .send_object(alice, bob, &v1, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    swarm
        .send_object(alice, bob, &v2, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let optimistic_bytes = swarm.net().metrics().bytes;

    assert!(
        optimistic_bytes < eager_bytes,
        "optimistic {optimistic_bytes} B should undercut eager {eager_bytes} B on repeats"
    );
}

#[test]
fn eager_proxy_still_translates() {
    let Fixture {
        mut swarm,
        alice,
        bob,
    } = fixture();
    let v = make_person(&mut swarm, alice, "greta");
    swarm
        .send_object_eager(alice, bob, &v, PayloadFormat::Soap)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    let Delivery::Accepted {
        proxy: Some(proxy), ..
    } = &ds[0]
    else {
        panic!()
    };
    let got = proxy
        .invoke(&mut swarm.peer_mut(bob).runtime, "getPersonName", &[])
        .unwrap();
    assert_eq!(got.as_str().unwrap(), "greta");
}

#[test]
fn soap_and_binary_payloads_both_work() {
    for format in [PayloadFormat::Soap, PayloadFormat::Binary] {
        let Fixture {
            mut swarm,
            alice,
            bob,
        } = fixture();
        let v = make_person(&mut swarm, alice, "f");
        swarm.send_object(alice, bob, &v, format).unwrap();
        swarm.run().unwrap();
        let ds = swarm.peer_mut(bob).take_deliveries();
        assert!(ds[0].is_accepted(), "{format:?}");
    }
}

#[test]
fn primitive_values_accepted_without_protocol_rounds() {
    let Fixture {
        mut swarm,
        alice,
        bob,
    } = fixture();
    swarm
        .send_object(
            alice,
            bob,
            &Value::Array(vec![Value::I32(1), Value::Str("two".into())]),
            PayloadFormat::Binary,
        )
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    let Delivery::Accepted { value, proxy, .. } = &ds[0] else {
        panic!()
    };
    assert!(proxy.is_none());
    assert_eq!(value.as_array().unwrap().len(), 2);
    assert_eq!(swarm.net().metrics().kind(kinds::DESC_REQUEST).messages, 0);
}

#[test]
fn nested_multi_assembly_object_travels_whole() {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());

    let addr = TypeDef::class("Address", "alice")
        .field("street", primitives::STRING)
        .ctor(vec![])
        .build();
    let person = TypeDef::class("Person", "alice")
        .field("name", primitives::STRING)
        .field("home", "Address")
        .method("getName", vec![], primitives::STRING)
        .ctor(vec![])
        .build();
    let (ag, pg) = (addr.guid, person.guid);
    swarm
        .publish(
            alice,
            Assembly::builder("alice-addr")
                .ty(addr)
                .ctor_body(ag, 0, bodies::ctor_assign(&[]))
                .build(),
        )
        .unwrap();
    swarm
        .publish(
            alice,
            Assembly::builder("alice-person")
                .ty(person.clone())
                .body(pg, "getName", 0, bodies::getter("name"))
                .ctor_body(pg, 0, bodies::ctor_assign(&[]))
                .build(),
        )
        .unwrap();

    // Bob's interest: structurally equivalent local Person view.
    let bob_person = TypeDef::class("Person", "bob")
        .field("name", primitives::STRING)
        .field("home", "Address")
        .method("getName", vec![], primitives::STRING)
        .build();
    let bob_addr = TypeDef::class("Address", "bob")
        .field("street", primitives::STRING)
        .build();
    swarm.peer_mut(bob).runtime.register_type(bob_addr).unwrap();
    swarm
        .peer_mut(bob)
        .subscribe(TypeDescription::from_def(&bob_person));

    let rt = &mut swarm.peer_mut(alice).runtime;
    let ah = rt.instantiate(&"Address".into(), &[]).unwrap();
    rt.set_field(ah, "street", Value::from("Main St 1"))
        .unwrap();
    let ph = rt.instantiate(&"Person".into(), &[]).unwrap();
    rt.set_field(ph, "name", Value::from("ada")).unwrap();
    rt.set_field(ph, "home", Value::Obj(ah)).unwrap();

    swarm
        .send_object(alice, bob, &Value::Obj(ph), PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();

    let ds = swarm.peer_mut(bob).take_deliveries();
    let Delivery::Accepted { value, .. } = &ds[0] else {
        panic!("{ds:?}")
    };
    let h = value.as_obj().unwrap();
    let rt = &mut swarm.peer_mut(bob).runtime;
    let home = rt.get_field(h, "home").unwrap().as_obj().unwrap();
    assert_eq!(
        rt.get_field(home, "street").unwrap().as_str().unwrap(),
        "Main St 1"
    );
    // Both assemblies were fetched — and since the envelope listed them
    // together, the two requests crossed the wire as one coalesced
    // batch, not two messages (responses batch the same way).
    assert_eq!(swarm.peer(bob).stats.asm_requests, 2);
    let m = swarm.net().metrics();
    assert_eq!(m.kind(kinds::ASM_REQUEST).messages, 0, "requests batched");
    assert!(
        m.batched_frames() >= 4,
        "2 requests + 2 responses in batches"
    );
}

#[test]
fn virtual_time_advances_more_for_protocol_rounds() {
    let Fixture {
        mut swarm,
        alice,
        bob,
    } = fixture();
    let v = make_person(&mut swarm, alice, "t");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let t_first = swarm.net().now_us();
    assert!(t_first > 0);
    let v2 = make_person(&mut swarm, alice, "t2");
    swarm
        .send_object(alice, bob, &v2, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let t_second = swarm.net().now_us() - t_first;
    assert!(
        t_second < t_first,
        "cached exchange ({t_second} µs) beats cold exchange ({t_first} µs)"
    );
}

#[test]
fn known_type_without_interest_is_accepted_raw() {
    // Bob has the exact same assembly installed; no interests declared.
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::paper());
    let bob = swarm.add_peer(ConformanceConfig::paper());
    let (asm, _) = person_assembly("shared", "getName", "setName");
    swarm.publish(alice, asm.clone()).unwrap();
    swarm.publish(bob, asm).unwrap();
    let v = make_person(&mut swarm, alice, "raw");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    let Delivery::Accepted {
        interest,
        proxy,
        value,
        ..
    } = &ds[0]
    else {
        panic!()
    };
    assert!(interest.is_none());
    assert!(proxy.is_none());
    let h = value.as_obj().unwrap();
    assert_eq!(
        swarm
            .peer_mut(bob)
            .runtime
            .invoke(h, "getName", &[])
            .unwrap()
            .as_str()
            .unwrap(),
        "raw"
    );
}

#[test]
fn unknown_type_without_interest_is_rejected() {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::paper());
    let bob = swarm.add_peer(ConformanceConfig::paper());
    let (asm, _) = person_assembly("only-alice", "getName", "setName");
    swarm.publish(alice, asm).unwrap();
    let v = make_person(&mut swarm, alice, "n");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    assert!(matches!(ds[0], Delivery::Rejected { .. }));
}

#[test]
fn many_types_many_objects_mixed_verdicts() {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());
    // Bob subscribes to Person only.
    let (asm_b, def_b) = person_assembly("bob", "getName", "setName");
    swarm.publish(bob, asm_b).unwrap();
    swarm
        .peer_mut(bob)
        .subscribe(TypeDescription::from_def(&def_b));
    // Alice publishes Person and Spaceship, sends a mix.
    let (asm_a, _) = person_assembly("alice", "getPersonName", "setPersonName");
    let (ship_asm, _) = alien_assembly();
    swarm.publish(alice, asm_a).unwrap();
    swarm.publish(alice, ship_asm).unwrap();
    for i in 0..6 {
        let v = if i % 3 == 0 {
            let rt = &mut swarm.peer_mut(alice).runtime;
            Value::Obj(rt.instantiate(&"Spaceship".into(), &[]).unwrap())
        } else {
            make_person(&mut swarm, alice, &format!("p{i}"))
        };
        swarm
            .send_object(alice, bob, &v, PayloadFormat::Binary)
            .unwrap();
    }
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    assert_eq!(ds.len(), 6);
    let accepted = ds.iter().filter(|d| d.is_accepted()).count();
    assert_eq!(accepted, 4, "4 Persons accepted, 2 Spaceships rejected");
    // Spaceship's code never crossed the wire.
    assert_eq!(swarm.net().metrics().kind(kinds::ASM_REQUEST).messages, 1);
}

/// Regression: an exchange whose envelope lists a description path that
/// was already fetched *and consumed* by an earlier exchange must not
/// wait for a second response that will never come.
#[test]
fn second_exchange_reusing_a_consumed_description_path_completes() {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());

    // Two assemblies at Alice: Address alone, and a Person whose `home`
    // field references Address (so a Person envelope lists both paths).
    let address = TypeDef::class("Address", "alice")
        .field("street", primitives::STRING)
        .ctor(vec![])
        .build();
    let (ag,) = (address.guid,);
    let addr_asm = Assembly::builder("alice-address")
        .ty(address.clone())
        .ctor_body(ag, 0, bodies::ctor_assign(&[]))
        .build();
    let person = TypeDef::class("Person", "alice")
        .field("name", primitives::STRING)
        .field("home", "Address")
        .method("getName", vec![], primitives::STRING)
        .ctor(vec![])
        .build();
    let pg = person.guid;
    let person_asm = Assembly::builder("alice-person")
        .ty(person.clone())
        .body(pg, "getName", 0, bodies::getter("name"))
        .ctor_body(pg, 0, bodies::ctor_assign(&[]))
        .build();
    swarm.publish(alice, addr_asm).unwrap();
    swarm.publish(alice, person_asm).unwrap();

    // Bob's interest covers Person only; he rejects the bare Address —
    // but that first exchange downloads (and consumes) the Address
    // description response.
    let bob_person = TypeDef::class("Person", "bob")
        .field("name", primitives::STRING)
        .field("home", "Address")
        .method("getName", vec![], primitives::STRING)
        .build();
    swarm
        .peer_mut(bob)
        .subscribe(TypeDescription::from_def(&bob_person));
    let bob_address = TypeDef::class("Address", "bob")
        .field("street", primitives::STRING)
        .build();
    swarm
        .peer_mut(bob)
        .subscribe(TypeDescription::from_def(&bob_address));

    // Exchange 1: a bare Address object (Bob accepts it and caches the
    // Address description).
    let ah = swarm
        .peer_mut(alice)
        .runtime
        .instantiate(&"Address".into(), &[])
        .unwrap();
    swarm
        .send_object(alice, bob, &Value::Obj(ah), PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    assert_eq!(swarm.peer_mut(bob).take_deliveries().len(), 1);

    // Exchange 2: a Person holding an Address — its envelope lists the
    // Address description path again, whose response was already
    // consumed above. The exchange must still complete.
    let ph = swarm
        .peer_mut(alice)
        .runtime
        .instantiate(&"Person".into(), &[])
        .unwrap();
    let ah2 = swarm
        .peer_mut(alice)
        .runtime
        .instantiate(&"Address".into(), &[])
        .unwrap();
    swarm
        .peer_mut(alice)
        .runtime
        .set_field(ph, "home", Value::Obj(ah2))
        .unwrap();
    swarm
        .peer_mut(alice)
        .runtime
        .set_field(ph, "name", Value::from("nested"))
        .unwrap();
    swarm
        .send_object(alice, bob, &Value::Obj(ph), PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();

    let ds = swarm.peer_mut(bob).take_deliveries();
    assert_eq!(
        ds.len(),
        1,
        "the nested Person must be delivered, not stuck"
    );
    let Delivery::Accepted {
        proxy: Some(proxy), ..
    } = &ds[0]
    else {
        panic!("expected an accepted Person, got {ds:?}");
    };
    assert_eq!(
        proxy
            .invoke(&mut swarm.peer_mut(bob).runtime, "getName", &[])
            .unwrap()
            .as_str()
            .unwrap(),
        "nested"
    );
}

/// A budget of N delivers exactly N messages; the N+1th poll errors
/// without popping (the message stays on the transport).
#[test]
fn message_budget_delivers_exactly_n() {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());
    for _ in 0..3 {
        swarm.send_raw(alice, bob, "object", vec![]).unwrap();
    }
    swarm.set_message_budget(2);
    assert!(swarm.poll_message().unwrap().is_some());
    assert!(swarm.poll_message().unwrap().is_some());
    let err = swarm.poll_message().unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
    // The undelivered message is still queued, not silently dropped.
    swarm.set_message_budget(10);
    assert!(swarm.poll_message().unwrap().is_some());
    assert!(swarm.poll_message().unwrap().is_none(), "drained");
}

#[test]
fn departed_remote_subscriber_is_retired_from_routes() {
    use pti_net::{LiveBus, PeerId};
    use std::time::Duration;

    let hub = LiveBus::new();
    let mut publisher_swarm: Swarm<LiveBus> = Swarm::over(hub.clone());
    let publisher = publisher_swarm.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    let (asm, def) = person_assembly("pub", "getName", "setName");
    publisher_swarm.publish(publisher, asm).unwrap();

    // A remote subscriber on a sibling swarm gossips its interest over.
    {
        let mut subscriber_swarm: Swarm<LiveBus> =
            Swarm::with_code_registry(hub.clone(), publisher_swarm.code_registry());
        let sub = subscriber_swarm.add_peer_as(PeerId(2), ConformanceConfig::pragmatic());
        subscriber_swarm.add_contact(publisher);
        subscriber_swarm.subscribe(sub, TypeDescription::from_def(&def));
        publisher_swarm.run_for(Duration::from_millis(50)).unwrap();
        assert_eq!(publisher_swarm.routes().len(), 1, "gossip landed");
        // The subscriber's swarm drops here, unregistering peer 2.
    }

    // Routing still resolves the stale entry, but the flush notices the
    // departure and retires it — the next publish stops targeting it.
    let h = publisher_swarm
        .peer_mut(publisher)
        .runtime
        .instantiate(&"Person".into(), &[])
        .unwrap();
    let first = publisher_swarm
        .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
        .unwrap();
    assert_eq!(first, 1, "stale route still resolved");
    publisher_swarm.flush_wire();
    assert!(publisher_swarm.routes().is_empty(), "dead peer retired");
    let second = publisher_swarm
        .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
        .unwrap();
    assert_eq!(second, 0, "no more targets after retirement");
}

#[test]
fn owning_a_former_contact_does_not_double_deliver() {
    use pti_net::NetConfig;

    let mut swarm = Swarm::new(NetConfig::default());
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    // Declared as a contact first (e.g. learned from a membership list),
    // then adopted as an owned peer: flood must target it exactly once.
    let adopted = pti_net::PeerId(7);
    swarm.add_contact(adopted);
    swarm.add_peer_as(adopted, ConformanceConfig::pragmatic());
    assert!(
        swarm.contacts().is_empty(),
        "owned peers leave the contacts"
    );

    let (asm, _) = person_assembly("pub", "getName", "setName");
    swarm.publish(publisher, asm).unwrap();
    let h = swarm
        .peer_mut(publisher)
        .runtime
        .instantiate(&"Person".into(), &[])
        .unwrap();
    let outcome = swarm
        .flood_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
        .unwrap();
    assert_eq!(outcome.sent, 1, "one copy per member");
    assert!(outcome.departed.is_empty());
    swarm.run().unwrap();
    assert_eq!(swarm.peer(adopted).stats.objects_received, 1);
}

#[test]
fn unroutable_interest_names_stay_local_and_benign() {
    use pti_net::{LiveBus, PeerId};
    use std::time::Duration;

    let hub = LiveBus::new();
    let mut listener: Swarm<LiveBus> = Swarm::over(hub.clone());
    let ear = listener.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());

    let mut subscriber_swarm: Swarm<LiveBus> = Swarm::over(hub.clone());
    let sub = subscriber_swarm.add_peer_as(PeerId(2), ConformanceConfig::pragmatic());
    subscriber_swarm.add_contact(ear);

    // "_" yields no identifier tokens: the interest works locally but is
    // unroutable, so it must neither enter the index nor cross the wire.
    let odd = TypeDescription::from_def(&TypeDef::class("_", "odd").build());
    subscriber_swarm.subscribe(sub, odd);
    assert!(subscriber_swarm.routes().is_empty());
    assert_eq!(
        pti_net::LiveBus::metrics(&hub).messages,
        0,
        "no gossip sent"
    );
    assert_eq!(subscriber_swarm.peer(sub).interests().len(), 1);

    // And a foreign peer gossiping an empty signature must not poison
    // the receiving pump: the message is ignored, not a protocol error.
    subscriber_swarm
        .send_raw(
            sub,
            ear,
            kinds::SUBSCRIBE,
            b"00000000-0000-0000-0000-000000000001\n".to_vec(),
        )
        .unwrap();
    listener.run_for(Duration::from_millis(20)).unwrap();
    assert!(listener.routes().is_empty());
}
