//! A protocol peer: runtime + interests + caches + pending exchanges.

use std::collections::{HashMap, HashSet};

use pti_conformance::{Conformance, ConformanceChecker, ConformanceConfig};
use pti_metamodel::{
    Assembly, DescriptionProvider, Guid, Runtime, TypeDescription, TypeName, Value,
};
use pti_net::PeerId;
use pti_proxy::DynamicProxy;
use pti_serialize::{AssemblyRef, ObjectEnvelope, Payload, PayloadFormat};

use crate::error::{Result, TransportError};

/// How an inbound object exchange ended.
// Accepted carries the full proxy (description + binding); deliveries are
// produced once per exchange and immediately consumed, so the size skew
// is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Delivery {
    /// The object was materialized into the local runtime.
    Accepted {
        /// Peer the object came from.
        from: PeerId,
        /// The materialized value (root object handle or primitive).
        value: Value,
        /// Name of the matched type of interest, if conformance-based
        /// matching took place.
        interest: Option<TypeName>,
        /// Identity of the matched interest — distinguishes same-named
        /// interests from different vendors.
        interest_guid: Option<Guid>,
        /// A proxy exposing the matched interest over the object (absent
        /// for primitives or interest-less direct acceptance).
        proxy: Option<DynamicProxy>,
    },
    /// Conformance failed against every local interest; the code was
    /// *not* downloaded (the optimistic saving).
    Rejected {
        /// Peer the object came from.
        from: PeerId,
        /// Type name of the rejected object.
        type_name: TypeName,
    },
}

impl Delivery {
    /// Whether this delivery accepted the object.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Delivery::Accepted { .. })
    }
}

/// Protocol counters per peer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Objects received (either protocol).
    pub objects_received: u64,
    /// Objects accepted.
    pub accepted: u64,
    /// Objects rejected after a failed conformance check.
    pub rejected: u64,
    /// Type-description fetches issued.
    pub desc_requests: u64,
    /// Assembly (code) fetches issued.
    pub asm_requests: u64,
    /// Conformance checks run.
    pub conformance_checks: u64,
}

/// One assembly this peer published, with its artifacts and paths.
#[derive(Debug, Clone)]
pub struct Published {
    /// The code bundle.
    pub assembly: Assembly,
    /// Descriptions of every type bundled in the assembly.
    pub descriptions: Vec<TypeDescription>,
    /// Download path of the descriptions.
    pub desc_path: String,
    /// Download path of the code.
    pub asm_path: String,
}

/// An inbound object whose exchange is still in flight (waiting on
/// descriptions and/or code).
#[derive(Debug, Clone)]
pub(crate) struct PendingObject {
    /// Monotonic arrival number (deliveries complete in arrival order
    /// whenever they unblock together).
    pub seq: u64,
    pub from: PeerId,
    pub envelope: ObjectEnvelope,
    /// Description paths still outstanding.
    pub awaiting_descs: HashSet<String>,
    /// `Some(paths)` once conformance passed: code paths still missing.
    pub awaiting_asms: Option<HashSet<String>>,
    /// Interest matched by the conformance stage.
    pub matched: Option<TypeDescription>,
}

/// A protocol peer.
///
/// Owns a [`Runtime`] (its types + objects), the set of *types of
/// interest* it is willing to receive, a cache of downloaded type
/// descriptions, and the conformance checker with its verdict cache.
pub struct Peer {
    /// This peer's network identity.
    pub id: PeerId,
    /// The local object runtime.
    pub runtime: Runtime,
    pub(crate) checker: ConformanceChecker,
    interests: Vec<TypeDescription>,
    /// Downloaded descriptions by GUID (plus name index for provider use).
    desc_cache: HashMap<Guid, TypeDescription>,
    desc_by_name: HashMap<String, Vec<Guid>>,
    /// Everything this peer published, by description path and by code
    /// path.
    published_by_desc: HashMap<String, Published>,
    published_by_asm: HashMap<String, Published>,
    /// Provenance: which published assembly a local type came from.
    path_of_type: HashMap<Guid, String>,
    /// Code paths whose assemblies are installed locally.
    installed: HashSet<String>,
    /// Content hashes of installed assemblies (path-independent identity).
    installed_hashes: HashSet<u64>,
    /// Description paths already requested (suppress duplicates).
    pub(crate) requested_descs: HashSet<String>,
    /// Description paths whose responses were already consumed (their
    /// contents live in the description cache; no further response will
    /// ever arrive for them).
    pub(crate) received_descs: HashSet<String>,
    /// Assembly paths already requested (suppress duplicates).
    pub(crate) requested_asms: HashSet<String>,
    pub(crate) pending: Vec<PendingObject>,
    pub(crate) next_seq: u64,
    deliveries: Vec<Delivery>,
    /// Protocol counters.
    pub stats: ProtocolStats,
}

impl std::fmt::Debug for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Peer")
            .field("id", &self.id)
            .field("interests", &self.interests.len())
            .field("desc_cache", &self.desc_cache.len())
            .field("installed", &self.installed.len())
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Peer {
    /// Creates a peer with the given conformance configuration.
    pub fn new(id: PeerId, config: ConformanceConfig) -> Peer {
        Peer {
            id,
            runtime: Runtime::new(),
            checker: ConformanceChecker::new(config),
            interests: Vec::new(),
            desc_cache: HashMap::new(),
            desc_by_name: HashMap::new(),
            published_by_desc: HashMap::new(),
            published_by_asm: HashMap::new(),
            path_of_type: HashMap::new(),
            installed: HashSet::new(),
            installed_hashes: HashSet::new(),
            requested_descs: HashSet::new(),
            received_descs: HashSet::new(),
            requested_asms: HashSet::new(),
            pending: Vec::new(),
            next_seq: 0,
            deliveries: Vec::new(),
            stats: ProtocolStats::default(),
        }
    }

    /// Publishes an assembly: installs it locally and exposes its
    /// descriptions and code under download paths derived from the peer
    /// id and assembly name. Returns the published record.
    ///
    /// # Errors
    /// Registry conflicts on installation.
    pub fn publish(&mut self, assembly: Assembly) -> Result<Published> {
        assembly.install(&mut self.runtime)?;
        let desc_path = format!("pti://{}/desc/{}", self.id, assembly.name());
        let asm_path = format!("pti://{}/asm/{}", self.id, assembly.name());
        let descriptions: Vec<TypeDescription> = assembly
            .types()
            .iter()
            .map(TypeDescription::from_def)
            .collect();
        for t in assembly.types() {
            self.path_of_type.insert(t.guid, asm_path.clone());
        }
        self.installed.insert(asm_path.clone());
        self.installed_hashes.insert(assembly.content_hash());
        let published = Published {
            assembly,
            descriptions,
            desc_path: desc_path.clone(),
            asm_path: asm_path.clone(),
        };
        self.published_by_desc.insert(desc_path, published.clone());
        self.published_by_asm.insert(asm_path, published.clone());
        Ok(published)
    }

    /// Declares a type of interest: inbound objects are matched (by
    /// implicit structural conformance) against these.
    pub fn subscribe(&mut self, interest: TypeDescription) {
        self.interests.push(interest);
    }

    /// The declared interests.
    pub fn interests(&self) -> &[TypeDescription] {
        &self.interests
    }

    /// Withdraws a previously declared interest by identity. Returns
    /// whether anything was removed. Objects already delivered are
    /// unaffected; future objects are matched against the remaining
    /// interests only.
    pub fn unsubscribe(&mut self, guid: pti_metamodel::Guid) -> bool {
        let before = self.interests.len();
        self.interests.retain(|d| d.guid != guid);
        before != self.interests.len()
    }

    /// Takes all finished deliveries accumulated so far.
    pub fn take_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    pub(crate) fn push_delivery(&mut self, d: Delivery) {
        match &d {
            Delivery::Accepted { .. } => self.stats.accepted += 1,
            Delivery::Rejected { .. } => self.stats.rejected += 1,
        }
        self.deliveries.push(d);
    }

    /// Whether the code for a download path is installed.
    pub fn has_installed(&self, asm_path: &str) -> bool {
        self.installed.contains(asm_path)
    }

    pub(crate) fn mark_installed(&mut self, asm_path: &str, content_hash: u64) {
        self.installed.insert(asm_path.to_string());
        self.installed_hashes.insert(content_hash);
    }

    /// Whether the code behind an assembly reference is available locally
    /// — by download path or by content identity (the same assembly may
    /// have been installed from a different peer's path).
    pub fn has_assembly(&self, aref: &AssemblyRef) -> bool {
        if self.installed.contains(&aref.assembly_path) {
            return true;
        }
        u64::from_str_radix(&aref.content_hash, 16)
            .map(|h| self.installed_hashes.contains(&h))
            .unwrap_or(false)
    }

    /// The published record behind a description path, if this peer owns
    /// it.
    pub fn published_by_desc_path(&self, path: &str) -> Option<&Published> {
        self.published_by_desc.get(path)
    }

    /// The published record behind a code path, if this peer owns it.
    pub fn published_by_asm_path(&self, path: &str) -> Option<&Published> {
        self.published_by_asm.get(path)
    }

    /// Caches a downloaded type description.
    pub fn cache_description(&mut self, desc: TypeDescription) {
        self.desc_by_name
            .entry(desc.name.full().to_ascii_lowercase())
            .or_default()
            .push(desc.guid);
        self.desc_cache.insert(desc.guid, desc);
    }

    /// Whether a description for this GUID is available (downloaded or
    /// derivable from the local registry).
    pub fn knows_description(&self, guid: Guid) -> bool {
        self.desc_cache.contains_key(&guid) || self.runtime.registry.contains(guid)
    }

    /// The description for a GUID, if known.
    pub fn description_of(&self, guid: Guid) -> Option<TypeDescription> {
        self.desc_cache.get(&guid).cloned().or_else(|| {
            self.runtime
                .registry
                .get(guid)
                .map(|d| TypeDescription::from_def(&d))
        })
    }

    /// A name-resolving provider over the registry plus the download
    /// cache (what conformance checks use on the receiving side).
    pub fn provider(&self) -> PeerProvider<'_> {
        PeerProvider { peer: self }
    }

    /// Runs the conformance stage for a root description: the first
    /// interest it conforms to (in subscription order).
    pub fn match_interest(
        &mut self,
        root: &TypeDescription,
    ) -> Option<(TypeDescription, Conformance)> {
        // Collect into a vec first: the provider borrows `self`.
        let interests = self.interests.clone();
        for interest in interests {
            self.stats.conformance_checks += 1;
            let provider = PeerProvider { peer: self };
            if let Ok(conf) = self.checker.check(root, &interest, &provider, &provider) {
                return Some((interest, conf));
            }
        }
        None
    }

    /// Builds the Figure-3 envelope for a value rooted in this peer's
    /// runtime: payload in the requested format plus assembly download
    /// information for every type reachable from the value.
    ///
    /// # Errors
    /// [`TransportError::NoProvenance`] if a reachable type was never
    /// published.
    pub fn make_envelope(&self, root: &Value, format: PayloadFormat) -> Result<ObjectEnvelope> {
        let guids = self.reachable_type_guids(root)?;
        let (type_name, type_guid) = match root {
            Value::Obj(h) => {
                let def = self.runtime.type_of(*h)?;
                (def.name.clone(), def.guid)
            }
            other => (TypeName::new(other.kind_name()), Guid::NIL),
        };
        let mut assemblies: Vec<AssemblyRef> = Vec::new();
        let mut seen_paths: HashSet<String> = HashSet::new();
        for guid in &guids {
            let path = self
                .path_of_type
                .get(guid)
                .ok_or_else(|| {
                    let name = self
                        .runtime
                        .registry
                        .get(*guid)
                        .map(|d| d.name.clone())
                        .unwrap_or_else(|| TypeName::new("<unknown>"));
                    TransportError::NoProvenance(name)
                })?
                .clone();
            if !seen_paths.insert(path.clone()) {
                continue;
            }
            let published = self
                .published_by_asm
                .get(&path)
                .ok_or_else(|| TransportError::UnknownPath(path.clone()))?;
            assemblies.push(AssemblyRef {
                name: published.assembly.name().to_string(),
                description_path: published.desc_path.clone(),
                assembly_path: published.asm_path.clone(),
                content_hash: format!("{:x}", published.assembly.content_hash()),
            });
        }
        let payload = match format {
            PayloadFormat::Soap => Payload::Soap(pti_serialize::to_soap(&self.runtime, root)?),
            PayloadFormat::Binary => {
                Payload::Binary(pti_serialize::to_binary(&self.runtime, root)?)
            }
        };
        Ok(ObjectEnvelope {
            type_name,
            type_guid,
            assemblies,
            payload,
        })
    }

    /// Deserializes an envelope payload into the local runtime.
    ///
    /// # Errors
    /// Any serializer error (unknown types mean the protocol let a
    /// deserialize happen before installing code — a bug).
    pub fn materialize(&mut self, envelope: &ObjectEnvelope) -> Result<Value> {
        Ok(match &envelope.payload {
            Payload::Soap(el) => pti_serialize::from_soap(&mut self.runtime, el)?,
            Payload::Binary(bytes) => pti_serialize::from_binary(&mut self.runtime, bytes)?,
        })
    }

    /// GUIDs of the types of all objects reachable from `root`.
    fn reachable_type_guids(&self, root: &Value) -> Result<Vec<Guid>> {
        let mut out = Vec::new();
        let mut seen_objs = HashSet::new();
        let mut stack = vec![root.clone()];
        while let Some(v) = stack.pop() {
            match v {
                Value::Obj(h) => {
                    if !seen_objs.insert(h) {
                        continue;
                    }
                    let obj = self.runtime.heap.get(h)?;
                    if !out.contains(&obj.type_guid) {
                        out.push(obj.type_guid);
                    }
                    for fv in obj.fields.values() {
                        stack.push(fv.clone());
                    }
                }
                Value::Array(items) => stack.extend(items),
                _ => {}
            }
        }
        Ok(out)
    }
}

/// [`DescriptionProvider`] over a peer's registry plus its description
/// download cache.
pub struct PeerProvider<'p> {
    peer: &'p Peer,
}

impl DescriptionProvider for PeerProvider<'_> {
    fn describe(&self, name: &TypeName) -> Option<TypeDescription> {
        // Local registry first (authoritative for installed types)...
        if let Some(d) = self.peer.runtime.registry.resolve(name) {
            return Some(TypeDescription::from_def(&d));
        }
        // ...then the download cache.
        self.peer
            .desc_by_name
            .get(&name.full().to_ascii_lowercase())
            .and_then(|guids| guids.first())
            .and_then(|g| self.peer.desc_cache.get(g))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::{bodies, primitives, ParamDef, TypeDef};

    fn person_assembly(salt: &str) -> (Assembly, TypeDef) {
        let def = TypeDef::class("Person", salt)
            .field("name", primitives::STRING)
            .method("getName", vec![], primitives::STRING)
            .ctor(vec![ParamDef::new("n", primitives::STRING)])
            .build();
        let g = def.guid;
        let asm = Assembly::builder(format!("person-{salt}"))
            .ty(def.clone())
            .body(g, "getName", 0, bodies::getter("name"))
            .ctor_body(g, 1, bodies::ctor_assign(&["name"]))
            .build();
        (asm, def)
    }

    #[test]
    fn publish_installs_and_indexes() {
        let mut p = Peer::new(PeerId(1), ConformanceConfig::paper());
        let (asm, def) = person_assembly("a");
        let pubd = p.publish(asm).unwrap();
        assert!(p.runtime.registry.contains(def.guid));
        assert!(p.has_installed(&pubd.asm_path));
        assert!(p.published_by_desc_path(&pubd.desc_path).is_some());
        assert!(p.published_by_asm_path(&pubd.asm_path).is_some());
        assert_eq!(pubd.descriptions.len(), 1);
    }

    #[test]
    fn envelope_carries_provenance() {
        let mut p = Peer::new(PeerId(1), ConformanceConfig::paper());
        let (asm, _) = person_assembly("a");
        p.publish(asm).unwrap();
        let h = p
            .runtime
            .instantiate(&"Person".into(), &[Value::from("ada")])
            .unwrap();
        let env = p
            .make_envelope(&Value::Obj(h), PayloadFormat::Binary)
            .unwrap();
        assert_eq!(env.type_name.full(), "Person");
        assert_eq!(env.assemblies.len(), 1);
        assert!(env.assemblies[0].assembly_path.contains("peer-1"));
    }

    #[test]
    fn unpublished_type_has_no_provenance() {
        let mut p = Peer::new(PeerId(1), ConformanceConfig::paper());
        let (_, def) = person_assembly("a");
        p.runtime.register_type(def).unwrap();
        let h = p.runtime.instantiate(&"Person".into(), &[Value::from("x")]);
        // ctor body missing (not installed via assembly) — instantiate
        // with 1 arg still works (declared ctor), body absent is allowed.
        let h = h.unwrap();
        let err = p
            .make_envelope(&Value::Obj(h), PayloadFormat::Binary)
            .unwrap_err();
        assert!(matches!(err, TransportError::NoProvenance(_)));
    }

    #[test]
    fn envelope_includes_nested_assemblies() {
        // Person in one assembly, Address in another; a Person holding an
        // Address must list both (Figure 3's A + B information).
        let mut p = Peer::new(PeerId(1), ConformanceConfig::paper());
        let addr = TypeDef::class("Address", "a")
            .field("street", primitives::STRING)
            .ctor(vec![])
            .build();
        let person = TypeDef::class("Person", "a")
            .field("name", primitives::STRING)
            .field("home", "Address")
            .ctor(vec![])
            .build();
        p.publish(Assembly::builder("addr").ty(addr).build())
            .unwrap();
        p.publish(Assembly::builder("person").ty(person).build())
            .unwrap();
        let ah = p.runtime.instantiate(&"Address".into(), &[]).unwrap();
        let ph = p.runtime.instantiate(&"Person".into(), &[]).unwrap();
        p.runtime.set_field(ph, "home", Value::Obj(ah)).unwrap();
        let env = p
            .make_envelope(&Value::Obj(ph), PayloadFormat::Soap)
            .unwrap();
        assert_eq!(env.assemblies.len(), 2);
    }

    #[test]
    fn primitive_envelope_has_no_assemblies() {
        let p = Peer::new(PeerId(1), ConformanceConfig::paper());
        let env = p
            .make_envelope(&Value::I32(42), PayloadFormat::Binary)
            .unwrap();
        assert!(env.assemblies.is_empty());
        assert!(env.type_guid.is_nil());
    }

    #[test]
    fn interest_matching_uses_conformance() {
        let mut p = Peer::new(PeerId(2), ConformanceConfig::paper());
        let (asm_local, local_def) = person_assembly("local");
        p.publish(asm_local).unwrap();
        p.subscribe(TypeDescription::from_def(&local_def));
        let (_, remote_def) = person_assembly("remote");
        let remote_desc = TypeDescription::from_def(&remote_def);
        let got = p.match_interest(&remote_desc);
        assert!(got.is_some(), "equivalent remote Person matches");
        let alien = TypeDescription::from_def(&TypeDef::class("Alien", "x").build());
        assert!(p.match_interest(&alien).is_none());
        assert!(p.stats.conformance_checks >= 2);
    }

    #[test]
    fn description_cache_feeds_provider() {
        let mut p = Peer::new(PeerId(1), ConformanceConfig::paper());
        let remote = TypeDescription::from_def(
            &TypeDef::class("Remote", "r")
                .field("x", primitives::INT32)
                .build(),
        );
        assert!(!p.knows_description(remote.guid));
        p.cache_description(remote.clone());
        assert!(p.knows_description(remote.guid));
        let provider = p.provider();
        let got = provider.describe(&TypeName::new("Remote")).unwrap();
        assert_eq!(got.guid, remote.guid);
    }
}
