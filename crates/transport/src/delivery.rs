//! At-least-once delivery for OBJECT traffic: per-link sequencing,
//! cumulative ACKs, timer-driven retransmission with exponential
//! backoff, credit-based flow control, and per-topic retained-event
//! rings for catch-up replay.
//!
//! The engine is pure state + arithmetic: it never touches the network.
//! The swarm feeds it events (`offer`, `on_object_r`, `on_ack`, `poll`)
//! and queues whatever frames the engine hands back, which keeps the
//! borrow structure simple and the whole layer deterministic — the only
//! input besides the frames themselves is the fabric clock
//! (`Transport::now_us`), which is virtual on the simulated fabrics.
//!
//! ## Wire formats
//!
//! A reliable object frame (`kinds::OBJECT_R`) prefixes the encoded
//! envelope with a 20-byte header:
//!
//! ```text
//! [ 8B link_seq LE ][ 4B publisher LE ][ 8B event_seq LE ][ envelope ]
//! ```
//!
//! `link_seq` orders the (sender, receiver) link (Go-Back-N);
//! `publisher`/`event_seq` identify the event end-to-end so replays and
//! retransmits never double-deliver. An ACK frame (`kinds::ACK`) is the
//! 8-byte little-endian cumulative `link_seq` the receiver has accepted
//! through.

use std::collections::{BTreeMap, VecDeque};

use pti_net::{Payload, PeerId};

/// Bytes of reliable-frame header preceding the envelope.
pub const RELIABLE_HEADER_LEN: usize = 20;

/// Delivery guarantee requested for routed OBJECT traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QoS {
    /// Ship once, never retransmit (the pre-durability behavior).
    #[default]
    FireAndForget,
    /// Sequence, acknowledge, and retransmit until delivered or the
    /// retry budget is exhausted.
    AtLeastOnce,
}

/// Tunables for the at-least-once machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryConfig {
    /// Requested guarantee for routed objects.
    pub qos: QoS,
    /// Maximum unacknowledged frames per (sender, receiver) link; the
    /// sender stops transmitting at zero credit and ACKs replenish.
    pub credit_window: usize,
    /// Events retained per topic for catch-up replay (0 = no replay).
    pub replay_depth: usize,
    /// Initial retransmit backoff in fabric microseconds (doubles per
    /// retry round).
    pub retransmit_base_us: u64,
    /// Retry rounds before a link is declared unreachable.
    pub max_retries: u32,
}

impl Default for DeliveryConfig {
    fn default() -> DeliveryConfig {
        DeliveryConfig {
            qos: QoS::FireAndForget,
            credit_window: 32,
            replay_depth: 0,
            retransmit_base_us: 4_000,
            max_retries: 6,
        }
    }
}

/// Counters the durability layer keeps (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Events handed to `offer` (per destination).
    pub events_offered: u64,
    /// Reliable frames admitted to a link (first transmission).
    pub frames_sent: u64,
    /// Frames resent by the retransmit timer (Go-Back-N resends each
    /// count individually).
    pub retransmits: u64,
    /// ACK frames produced.
    pub acks_sent: u64,
    /// ACK frames consumed.
    pub acks_received: u64,
    /// Events accepted in order and surfaced to the typed layer.
    pub delivered: u64,
    /// Link-level duplicates (already-acknowledged `link_seq`) dropped.
    pub link_duplicates: u64,
    /// Out-of-order frames discarded pending retransmission of the gap.
    pub gap_discards: u64,
    /// Events suppressed by the (publisher, event_seq) watermark — the
    /// replay/retransmit dedup the typed layer never sees.
    pub duplicates_suppressed: u64,
    /// Retained events re-offered to late joiners.
    pub replayed: u64,
    /// Links declared unreachable after exhausting retries.
    pub unreachable: u64,
    /// High-water mark of any link's in-flight queue (never exceeds the
    /// credit window by construction).
    pub max_inflight: usize,
    /// High-water mark of any link's zero-credit overflow buffer.
    pub max_pending: usize,
}

/// One event held in a per-topic replay ring.
#[derive(Debug, Clone)]
pub struct RetainedEvent {
    /// Peer that originally routed the event.
    pub publisher: PeerId,
    /// The publisher's end-to-end sequence number for the event.
    pub event_seq: u64,
    /// The encoded object envelope (unframed).
    pub bytes: Payload,
}

/// Receiver verdict for one inbound reliable frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inbound {
    /// In order and novel: surface the envelope (bytes after
    /// [`RELIABLE_HEADER_LEN`]) to the typed layer.
    Deliver {
        /// Originating publisher from the frame header.
        publisher: PeerId,
        /// End-to-end sequence from the frame header.
        event_seq: u64,
    },
    /// In order on the link but at or below the publisher's delivery
    /// watermark (a replay or cross-link duplicate): acknowledged,
    /// not surfaced.
    Suppressed,
    /// Below the link's cumulative ACK (a retransmit of something
    /// already accepted): dropped, ACK repeated.
    LinkDuplicate,
    /// Ahead of the expected sequence (a gap from loss): discarded, the
    /// repeated ACK asks the sender to go back.
    GapDiscard,
    /// Header shorter than [`RELIABLE_HEADER_LEN`].
    Malformed,
}

/// Frames and verdicts produced by one retransmit-timer poll.
#[derive(Debug, Default)]
pub struct PollOutcome {
    /// Frames to re-queue, as (sender, receiver, frame).
    pub retransmits: Vec<(PeerId, PeerId, Payload)>,
    /// Links that exhausted their retry budget, as (sender, receiver);
    /// the engine has already shed their state.
    pub unreachable: Vec<(PeerId, PeerId)>,
}

/// Sending half of one (sender, receiver) link.
#[derive(Debug, Default)]
struct SenderLink {
    /// Next `link_seq` to assign (first transmission uses 1).
    next_seq: u64,
    /// Frames transmitted but not yet cumulatively acknowledged.
    inflight: VecDeque<(u64, Payload)>,
    /// Events awaiting credit, unframed: (publisher, event_seq, bytes).
    pending: VecDeque<(PeerId, u64, Payload)>,
    /// Current backoff; doubles each retry round.
    backoff_us: u64,
    /// Fabric time of the next retransmit (0 = nothing scheduled).
    next_retry_us: u64,
    /// Consecutive retry rounds without an ACK.
    retries: u32,
}

/// Receiving half of one (receiver, sender) link.
#[derive(Debug)]
struct ReceiverLink {
    /// Next `link_seq` the receiver will accept.
    expected: u64,
}

/// The at-least-once delivery engine one swarm owns: sender/receiver
/// link state, per-publisher event sequencing, dedup watermarks, and
/// the retained-event replay rings.
#[derive(Debug, Default)]
pub struct DeliveryEngine {
    config: DeliveryConfig,
    /// Sending links keyed (local sender, remote receiver).
    senders: BTreeMap<(PeerId, PeerId), SenderLink>,
    /// Receiving links keyed (local receiver, remote sender).
    receivers: BTreeMap<(PeerId, PeerId), ReceiverLink>,
    /// Highest event_seq surfaced per (local receiver, publisher) — the
    /// end-to-end dedup watermark.
    watermarks: BTreeMap<(PeerId, PeerId), u64>,
    /// Next event_seq per local publisher.
    event_seqs: BTreeMap<PeerId, u64>,
    /// Per-topic replay rings, keyed by simple type name.
    retained: BTreeMap<String, VecDeque<RetainedEvent>>,
    stats: DeliveryStats,
}

impl DeliveryEngine {
    /// Creates an engine with the given tunables.
    pub fn new(config: DeliveryConfig) -> DeliveryEngine {
        DeliveryEngine {
            config,
            ..DeliveryEngine::default()
        }
    }

    /// The engine's tunables.
    pub fn config(&self) -> &DeliveryConfig {
        &self.config
    }

    /// Mutable access to the tunables (builder-time only; changing the
    /// credit window mid-flight affects only future admissions).
    pub fn config_mut(&mut self) -> &mut DeliveryConfig {
        &mut self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DeliveryStats {
        self.stats
    }

    /// Mutable counters (the swarm bumps `replayed` at its replay hook).
    pub fn stats_mut(&mut self) -> &mut DeliveryStats {
        &mut self.stats
    }

    /// Allocates the next end-to-end sequence for a local publisher
    /// (first call returns 1).
    pub fn next_event_seq(&mut self, publisher: PeerId) -> u64 {
        let seq = self.event_seqs.entry(publisher).or_insert(0);
        *seq += 1;
        *seq
    }

    /// Retains an event in the topic's replay ring (no-op when
    /// `replay_depth` is 0). Oldest events fall off the ring.
    pub fn retain(&mut self, type_name: &str, publisher: PeerId, event_seq: u64, bytes: Payload) {
        let depth = self.config.replay_depth;
        if depth == 0 {
            return;
        }
        let ring = self.retained.entry(type_name.to_string()).or_default();
        ring.push_back(RetainedEvent {
            publisher,
            event_seq,
            bytes,
        });
        while ring.len() > depth {
            ring.pop_front();
        }
    }

    /// A clone of every replay ring, as (type name, events oldest
    /// first). Payload clones are refcount bumps.
    pub fn replay_snapshot(&self) -> Vec<(String, Vec<RetainedEvent>)> {
        self.retained
            .iter()
            .map(|(name, ring)| (name.clone(), ring.iter().cloned().collect()))
            .collect()
    }

    /// Offers one event to one receiver. Returns the framed payload to
    /// queue if the link has credit; otherwise buffers the event until
    /// an ACK frees a slot (the caller sends nothing now).
    pub fn offer(
        &mut self,
        from: PeerId,
        to: PeerId,
        publisher: PeerId,
        event_seq: u64,
        envelope: &Payload,
        now_us: u64,
    ) -> Option<Payload> {
        self.stats.events_offered += 1;
        let window = self.config.credit_window;
        let base = self.config.retransmit_base_us;
        let link = self.senders.entry((from, to)).or_default();
        if link.inflight.len() >= window {
            // pti-allow(unbounded-queue): zero-credit overflow buffer —
            // drained as ACKs replenish credit; depth is surfaced in
            // DeliveryStats::max_pending rather than capped, so the
            // publisher sees backpressure instead of silent loss.
            link.pending
                .push_back((publisher, event_seq, envelope.clone()));
            self.stats.max_pending = self.stats.max_pending.max(link.pending.len());
            return None;
        }
        let frame = Self::admit(link, publisher, event_seq, envelope, now_us, base);
        self.stats.frames_sent += 1;
        self.stats.max_inflight = self.stats.max_inflight.max(link.inflight.len());
        Some(frame)
    }

    /// Frames an event onto a link that has credit: assigns the next
    /// link_seq, records it in flight, and arms the retransmit timer if
    /// it was idle.
    fn admit(
        link: &mut SenderLink,
        publisher: PeerId,
        event_seq: u64,
        envelope: &Payload,
        now_us: u64,
        base_us: u64,
    ) -> Payload {
        link.next_seq += 1;
        let seq = link.next_seq;
        let frame = encode_reliable(seq, publisher, event_seq, envelope);
        // pti-allow(unbounded-queue): bounded by the credit_window check at both call sites
        link.inflight.push_back((seq, frame.clone()));
        if link.next_retry_us == 0 {
            link.backoff_us = base_us;
            link.next_retry_us = now_us.saturating_add(base_us);
        }
        frame
    }

    /// Consumes one inbound reliable frame for `local` from `sender`.
    /// Returns the verdict and, for any well-formed frame, the ACK
    /// payload to queue back to the sender.
    pub fn on_object_r(
        &mut self,
        local: PeerId,
        sender: PeerId,
        payload: &Payload,
    ) -> (Inbound, Option<Payload>) {
        let Some((link_seq, publisher, event_seq)) = decode_reliable_header(payload) else {
            return (Inbound::Malformed, None);
        };
        let link = self
            .receivers
            .entry((local, sender))
            .or_insert(ReceiverLink { expected: 1 });
        let verdict = if link_seq == link.expected {
            link.expected += 1;
            let watermark = self.watermarks.entry((local, publisher)).or_insert(0);
            if event_seq <= *watermark {
                self.stats.duplicates_suppressed += 1;
                Inbound::Suppressed
            } else {
                *watermark = event_seq;
                self.stats.delivered += 1;
                Inbound::Deliver {
                    publisher,
                    event_seq,
                }
            }
        } else if link_seq < link.expected {
            self.stats.link_duplicates += 1;
            Inbound::LinkDuplicate
        } else {
            self.stats.gap_discards += 1;
            Inbound::GapDiscard
        };
        let cumulative = self
            .receivers
            .get(&(local, sender))
            .map(|l| l.expected - 1)
            .unwrap_or(0);
        self.stats.acks_sent += 1;
        (verdict, Some(encode_ack(cumulative)))
    }

    /// Consumes one ACK addressed to local sender `local` from `remote`.
    /// Returns freshly framed payloads for events that the replenished
    /// credit admits (the caller queues them to `remote`), or `None` if
    /// the ACK payload is malformed.
    pub fn on_ack(
        &mut self,
        local: PeerId,
        remote: PeerId,
        payload: &Payload,
        now_us: u64,
    ) -> Option<Vec<Payload>> {
        let cumulative = decode_ack(payload)?;
        self.stats.acks_received += 1;
        let window = self.config.credit_window;
        let base = self.config.retransmit_base_us;
        let Some(link) = self.senders.get_mut(&(local, remote)) else {
            return Some(Vec::new());
        };
        let before = link.inflight.len();
        while link.inflight.front().is_some_and(|(s, _)| *s <= cumulative) {
            link.inflight.pop_front();
        }
        if link.inflight.len() < before {
            // Progress: reset the retry budget and backoff.
            link.retries = 0;
            link.backoff_us = base;
            link.next_retry_us = if link.inflight.is_empty() {
                0
            } else {
                now_us.saturating_add(base)
            };
        }
        let mut refilled = Vec::new();
        while link.inflight.len() < window {
            let Some((publisher, event_seq, bytes)) = link.pending.pop_front() else {
                break;
            };
            refilled.push(Self::admit(
                link, publisher, event_seq, &bytes, now_us, base,
            ));
            self.stats.frames_sent += 1;
        }
        if !refilled.is_empty() {
            let depth = self.senders[&(local, remote)].inflight.len();
            self.stats.max_inflight = self.stats.max_inflight.max(depth);
        }
        Some(refilled)
    }

    /// Fires every due retransmit timer: Go-Back-N resends each overdue
    /// link's in-flight window with doubled backoff, and links past the
    /// retry budget are shed and reported unreachable.
    pub fn poll(&mut self, now_us: u64) -> PollOutcome {
        let mut out = PollOutcome::default();
        for (&(from, to), link) in self.senders.iter_mut() {
            if link.next_retry_us == 0 || now_us < link.next_retry_us || link.inflight.is_empty() {
                continue;
            }
            link.retries += 1;
            if link.retries > self.config.max_retries {
                out.unreachable.push((from, to));
                continue;
            }
            for (_, frame) in &link.inflight {
                out.retransmits.push((from, to, frame.clone()));
                self.stats.retransmits += 1;
            }
            link.backoff_us = link.backoff_us.saturating_mul(2);
            link.next_retry_us = now_us.saturating_add(link.backoff_us);
        }
        for key in &out.unreachable {
            self.senders.remove(key);
            self.stats.unreachable += 1;
        }
        out
    }

    /// The earliest armed retransmit deadline, if any link is waiting on
    /// an ACK.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.senders
            .values()
            .filter(|l| l.next_retry_us != 0 && !l.inflight.is_empty())
            .map(|l| l.next_retry_us)
            .min()
    }

    /// Whether any link still has unacknowledged or credit-blocked
    /// traffic.
    pub fn has_unsettled(&self) -> bool {
        self.senders
            .values()
            .any(|l| !l.inflight.is_empty() || !l.pending.is_empty())
    }

    /// Sheds every piece of per-peer state involving `peer`: its links
    /// (both directions), its dedup watermarks, and its event-sequence
    /// counter. Retained rings survive — they are topic state, not peer
    /// state — but nothing will replay *to* the shed peer until it is
    /// met again.
    pub fn shed_peer(&mut self, peer: PeerId) {
        self.senders.retain(|&(a, b), _| a != peer && b != peer);
        self.receivers.retain(|&(a, b), _| a != peer && b != peer);
        self.watermarks.retain(|&(a, b), _| a != peer && b != peer);
        self.event_seqs.remove(&peer);
    }
}

/// Builds a reliable frame: header (see module docs) + envelope bytes.
fn encode_reliable(
    link_seq: u64,
    publisher: PeerId,
    event_seq: u64,
    envelope: &Payload,
) -> Payload {
    let mut buf = Vec::with_capacity(RELIABLE_HEADER_LEN + envelope.len());
    buf.extend_from_slice(&link_seq.to_le_bytes());
    buf.extend_from_slice(&publisher.0.to_le_bytes());
    buf.extend_from_slice(&event_seq.to_le_bytes());
    buf.extend_from_slice(envelope.as_ref());
    Payload::from(buf)
}

/// Parses a reliable-frame header: (link_seq, publisher, event_seq).
/// `None` when the payload is shorter than the header.
pub fn decode_reliable_header(payload: &Payload) -> Option<(u64, PeerId, u64)> {
    let bytes: &[u8] = payload.as_ref();
    if bytes.len() < RELIABLE_HEADER_LEN {
        return None;
    }
    // pti-allow(panic-policy): slices are length-checked just above.
    let link_seq = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    // pti-allow(panic-policy): slices are length-checked just above.
    let publisher = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    // pti-allow(panic-policy): slices are length-checked just above.
    let event_seq = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    Some((link_seq, PeerId(publisher), event_seq))
}

/// Builds an ACK payload: the cumulative link_seq, little-endian.
fn encode_ack(cumulative: u64) -> Payload {
    Payload::from(cumulative.to_le_bytes().to_vec())
}

/// Parses an ACK payload. `None` when malformed.
fn decode_ack(payload: &Payload) -> Option<u64> {
    let bytes: &[u8] = payload.as_ref();
    let arr: [u8; 8] = bytes.try_into().ok()?;
    Some(u64::from_le_bytes(arr))
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: PeerId = PeerId(1);
    const B: PeerId = PeerId(2);

    fn engine(window: usize) -> DeliveryEngine {
        DeliveryEngine::new(DeliveryConfig {
            qos: QoS::AtLeastOnce,
            credit_window: window,
            replay_depth: 4,
            retransmit_base_us: 1_000,
            max_retries: 2,
        })
    }

    fn env(tag: u8) -> Payload {
        Payload::from(vec![tag; 3])
    }

    #[test]
    fn in_order_frames_deliver_and_ack_cumulatively() {
        let mut e = engine(8);
        let s1 = e.next_event_seq(A);
        let s2 = e.next_event_seq(A);
        let f1 = e.offer(A, B, A, s1, &env(1), 0).unwrap();
        let f2 = e.offer(A, B, A, s2, &env(2), 0).unwrap();
        let (v1, ack1) = e.on_object_r(B, A, &f1);
        assert!(matches!(v1, Inbound::Deliver { event_seq: 1, .. }));
        assert_eq!(decode_ack(&ack1.unwrap()), Some(1));
        let (v2, ack2) = e.on_object_r(B, A, &f2);
        assert!(matches!(v2, Inbound::Deliver { event_seq: 2, .. }));
        assert_eq!(decode_ack(&ack2.unwrap()), Some(2));
        assert_eq!(e.stats().delivered, 2);
    }

    #[test]
    fn gap_is_discarded_and_reacked_then_go_back_n_recovers() {
        let mut e = engine(8);
        let s1 = e.next_event_seq(A);
        let s2 = e.next_event_seq(A);
        let f1 = e.offer(A, B, A, s1, &env(1), 0).unwrap();
        let f2 = e.offer(A, B, A, s2, &env(2), 0).unwrap();
        // f1 lost: f2 arrives first.
        let (v, ack) = e.on_object_r(B, A, &f2);
        assert_eq!(v, Inbound::GapDiscard);
        assert_eq!(decode_ack(&ack.unwrap()), Some(0));
        // Timer fires: both frames resent.
        let out = e.poll(1_000);
        assert_eq!(out.retransmits.len(), 2);
        let (v1, _) = e.on_object_r(B, A, &f1);
        assert!(matches!(v1, Inbound::Deliver { .. }));
        let (v2, _) = e.on_object_r(B, A, &f2);
        assert!(matches!(v2, Inbound::Deliver { .. }));
    }

    #[test]
    fn retransmitted_frame_is_link_duplicate_after_accept() {
        let mut e = engine(8);
        let s1 = e.next_event_seq(A);
        let f1 = e.offer(A, B, A, s1, &env(1), 0).unwrap();
        let (v, _) = e.on_object_r(B, A, &f1);
        assert!(matches!(v, Inbound::Deliver { .. }));
        let (v, ack) = e.on_object_r(B, A, &f1);
        assert_eq!(v, Inbound::LinkDuplicate);
        assert_eq!(decode_ack(&ack.unwrap()), Some(1));
        assert_eq!(e.stats().delivered, 1, "typed layer sees it once");
    }

    #[test]
    fn watermark_suppresses_cross_link_replay_of_seen_event() {
        let mut e = engine(8);
        let s1 = e.next_event_seq(A);
        let direct = e.offer(A, B, A, s1, &env(1), 0).unwrap();
        let (v, _) = e.on_object_r(B, A, &direct);
        assert!(matches!(v, Inbound::Deliver { .. }));
        // The same (publisher A, seq 1) event replayed over a different
        // link (from peer 3) must not double-deliver.
        let replay = e.offer(PeerId(3), B, A, s1, &env(1), 0).unwrap();
        let (v, _) = e.on_object_r(B, PeerId(3), &replay);
        assert_eq!(v, Inbound::Suppressed);
        assert_eq!(e.stats().duplicates_suppressed, 1);
    }

    #[test]
    fn zero_credit_buffers_and_acks_replenish() {
        let mut e = engine(2);
        let seqs: Vec<u64> = (0..5).map(|_| e.next_event_seq(A)).collect();
        let mut sent = Vec::new();
        for &s in &seqs {
            if let Some(f) = e.offer(A, B, A, s, &env(s as u8), 0) {
                sent.push(f);
            }
        }
        assert_eq!(sent.len(), 2, "window of 2 admits 2");
        assert_eq!(e.stats().max_inflight, 2);
        assert_eq!(e.stats().max_pending, 3);
        // Receiver accepts both; its ACK refills the window.
        let mut last_ack = None;
        for f in &sent {
            let (_, ack) = e.on_object_r(B, A, f);
            last_ack = ack;
        }
        let refilled = e.on_ack(A, B, &last_ack.unwrap(), 10).unwrap();
        assert_eq!(refilled.len(), 2, "two more admitted, one still pending");
        assert!(e.has_unsettled());
        assert_eq!(e.stats().max_inflight, 2, "window never exceeded");
    }

    #[test]
    fn retries_exhaust_into_unreachable_and_link_is_shed() {
        let mut e = engine(4);
        let s = e.next_event_seq(A);
        e.offer(A, B, A, s, &env(1), 0).unwrap();
        // base 1000, retries allowed: 2. Fire at 1k (retry 1, backoff
        // 2k), 3k (retry 2, backoff 4k), 7k (budget exhausted).
        assert_eq!(e.poll(1_000).retransmits.len(), 1);
        assert_eq!(e.poll(3_000).retransmits.len(), 1);
        let out = e.poll(7_000);
        assert!(out.retransmits.is_empty());
        assert_eq!(out.unreachable, vec![(A, B)]);
        assert_eq!(e.stats().unreachable, 1);
        assert!(e.next_deadline_us().is_none(), "dead link unscheduled");
    }

    #[test]
    fn ack_resets_retry_budget() {
        let mut e = engine(4);
        let s1 = e.next_event_seq(A);
        let f1 = e.offer(A, B, A, s1, &env(1), 0).unwrap();
        assert_eq!(e.poll(1_000).retransmits.len(), 1);
        let (_, ack) = e.on_object_r(B, A, &f1);
        e.on_ack(A, B, &ack.unwrap(), 1_500).unwrap();
        assert!(e.next_deadline_us().is_none(), "all settled");
        // A fresh frame starts over with the base backoff.
        let s2 = e.next_event_seq(A);
        e.offer(A, B, A, s2, &env(2), 2_000).unwrap();
        assert_eq!(e.next_deadline_us(), Some(3_000));
    }

    #[test]
    fn retained_ring_caps_at_depth() {
        let mut e = engine(4); // replay_depth 4
        for i in 0..7u64 {
            e.retain("Person", A, i + 1, env(i as u8));
        }
        let snap = e.replay_snapshot();
        assert_eq!(snap.len(), 1);
        let (name, events) = &snap[0];
        assert_eq!(name, "Person");
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].event_seq, 4, "oldest retained is seq 4");
        assert_eq!(events[3].event_seq, 7);
    }

    #[test]
    fn replay_depth_zero_retains_nothing() {
        let mut e = DeliveryEngine::new(DeliveryConfig::default());
        e.retain("Person", A, 1, env(0));
        assert!(e.replay_snapshot().is_empty());
    }

    #[test]
    fn shed_peer_clears_links_and_watermarks() {
        let mut e = engine(4);
        let s = e.next_event_seq(A);
        let f = e.offer(A, B, A, s, &env(1), 0).unwrap();
        e.on_object_r(B, A, &f);
        e.shed_peer(B);
        assert!(!e.has_unsettled());
        assert!(e.next_deadline_us().is_none());
        // B rejoins with fresh state: the same event delivers again
        // (no stale watermark suppresses it).
        let f2 = e.offer(A, B, A, s, &env(1), 0).unwrap();
        let (v, _) = e.on_object_r(B, A, &f2);
        assert!(matches!(v, Inbound::Deliver { .. }));
    }

    #[test]
    fn malformed_frames_are_reported() {
        let mut e = engine(4);
        let (v, ack) = e.on_object_r(B, A, &Payload::from(vec![1, 2, 3]));
        assert_eq!(v, Inbound::Malformed);
        assert!(ack.is_none());
        assert!(e.on_ack(A, B, &Payload::from(vec![9]), 0).is_none());
    }
}
