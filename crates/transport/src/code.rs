//! The out-of-band code registry shared by every swarm on one fabric.
//!
//! Method bodies are Rust closures and cannot cross a (simulated) wire;
//! the registry keeps a global `path → Assembly` map standing in for the
//! actual code bytes, while the *sizes* of assembly transfers are charged
//! to the network for accounting. It is cheaply cloneable and
//! thread-safe so that concurrent swarms over a `LiveBus` — one per
//! thread, each owning its own peers — resolve downloads from the same
//! store, exactly like independent processes sharing a code server.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use pti_metamodel::Assembly;

/// A shared `download path → Assembly` store.
#[derive(Debug, Clone, Default)]
pub struct CodeRegistry {
    inner: Arc<Mutex<HashMap<String, Assembly>>>,
}

impl CodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> CodeRegistry {
        CodeRegistry::default()
    }

    /// Publishes an assembly under a download path.
    pub fn insert(&self, path: impl Into<String>, assembly: Assembly) {
        self.lock().insert(path.into(), assembly);
    }

    /// The assembly behind a download path, if any.
    pub fn get(&self, path: &str) -> Option<Assembly> {
        self.lock().get(path).cloned()
    }

    /// Number of published paths.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Assembly>> {
        // pti-allow(panic-policy): a poisoned registry lock means an installer panicked; the shared code cache is unrecoverable
        self.inner.lock().expect("code registry lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::TypeDef;

    #[test]
    fn clones_share_entries() {
        let reg = CodeRegistry::new();
        assert!(reg.is_empty());
        let clone = reg.clone();
        let asm = Assembly::builder("a")
            .ty(TypeDef::class("T", "s").build())
            .build();
        reg.insert("pti://peer-1/asm/a", asm);
        assert_eq!(clone.len(), 1);
        assert!(clone.get("pti://peer-1/asm/a").is_some());
        assert!(clone.get("pti://peer-1/asm/b").is_none());
    }
}
