//! The sharded host: M reactor threads, hash-pinned swarms, bridged
//! cross-shard links.
//!
//! A [`ShardedHost`] runs one [`ReactorHost`] per **shard**, each on its
//! own worker thread. The reactor world is `Rc`-based and must never
//! cross threads, so the control thread never touches a shard's host
//! directly: every operation ships as a boxed `FnOnce(&mut ReactorHost)`
//! command over the shard's mpsc channel and runs **on** the owning
//! thread (the run-to-completion sharding idiom — one event loop per
//! core, explicit message passing between them).
//!
//! **Ownership rules.** A peer id lives on exactly one shard: the shard
//! its ring was registered on. [`mount`](ShardedHost::mount) pins a
//! swarm by hashing the caller-chosen primary peer id;
//! [`mount_pinned`](ShardedHost::mount_pinned) overrides the hash for
//! placement experiments. After every mutating operation the control
//! thread diffs the shard's registered peers against its directory and
//! broadcasts the change: new peers become [`BridgeTx`] **proxies** on
//! every other shard, vanished peers have their proxies revoked. A send
//! to a remote peer therefore resolves locally (metrics recorded on the
//! origin shard), crosses the owning shard's bridge, and wakes its
//! thread — no shard ever blocks on another.
//!
//! **Quiescence is a two-phase barrier.** One shard looking idle means
//! nothing: a message can be in flight on a bridge between two shards
//! that both report empty queues. [`run_until_quiescent`](ShardedHost::run_until_quiescent)
//! repeats rounds of per-shard drains and only stops when a full round
//! does zero work **and** every bridge reports `pending() == 0`.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use pti_net::bridge::{BridgeRx, BridgeStats, BridgeTx};
use pti_net::{BridgeLink, NetMetrics, PeerId, ReactorNet, ReactorStats, Transport};

use crate::error::Result;
use crate::reactor_host::{MountedSwarm, ReactorHost};
use crate::swarm::Swarm;

/// A command executed on a shard's worker thread, with exclusive access
/// to its `ReactorHost`.
type Cmd = Box<dyn FnOnce(&mut ReactorHost) + Send>;

struct ShardHandle {
    /// Command channel into the worker; dropping it shuts the worker
    /// down (after it drains what's queued).
    cmds: Option<Sender<Cmd>>,
    join: Option<JoinHandle<()>>,
    /// Send half of the shard's injector bridge — cloned into every
    /// other shard as the proxy route for this shard's peers.
    bridge: BridgeTx,
    /// Nanoseconds the worker spent executing commands and autonomous
    /// pumps — the per-shard busy time R5's critical-path metric uses.
    busy_ns: Arc<AtomicU64>,
}

/// M single-threaded reactor shards behind one control-side facade.
///
/// See the [module docs](self) for the ownership rules and the drain
/// barrier. Mounted swarms are addressed by a *global* slot index; the
/// host maps it to `(shard, local slot)` internally.
pub struct ShardedHost {
    shards: Vec<ShardHandle>,
    /// Which shard owns each registered peer id. Ordered so directory
    /// reconciliation walks peers in id order — proxy registration and
    /// revocation then hit every shard in the same deterministic
    /// sequence on every run (`pti-lint`'s unordered-iter rule).
    directory: BTreeMap<PeerId, usize>,
    /// Global slot → (shard, local slot); tombstoned like the per-shard
    /// tables so indices survive unmounts.
    slots: Vec<Option<(usize, usize)>>,
    /// When set, idle workers pump their own injector backlog without
    /// waiting for the control thread (wake → drain → quiesce). Cleared
    /// for experiments that want strictly serialized rounds.
    autonomous: Arc<AtomicBool>,
}

impl std::fmt::Debug for ShardedHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHost")
            .field("shards", &self.shards.len())
            .field("swarms", &self.slots.iter().filter(|s| s.is_some()).count())
            .finish()
    }
}

/// The work a shard has performed, as a monotone counter: fabric sends +
/// ring pops + bridged messages drained. A drain round that moves this
/// by zero on every shard did nothing.
fn work_of(host: &ReactorHost) -> u64 {
    let stats = host.reactor().stats();
    stats.sends + stats.recvs + host.injected_total()
}

fn worker(
    cmds: Receiver<Cmd>,
    injector: BridgeRx,
    autonomous: Arc<AtomicBool>,
    busy_ns: Arc<AtomicU64>,
) {
    let mut host = ReactorHost::new();
    injector.bind_current_thread();
    host.set_injector(injector);
    loop {
        match cmds.try_recv() {
            Ok(cmd) => {
                // pti-allow(reactor-blocking): busy-ns accounting only — the timings feed ShardStats, never protocol decisions
                let start = Instant::now();
                cmd(&mut host);
                busy_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                continue;
            }
            Err(TryRecvError::Disconnected) => return,
            Err(TryRecvError::Empty) => {}
        }
        if autonomous.load(Ordering::Relaxed) {
            // pti-allow(reactor-blocking): busy-ns accounting only — the timings feed ShardStats, never protocol decisions
            let start = Instant::now();
            let before = work_of(&host);
            host.run_until_quiescent()
                // pti-allow(panic-policy): a failed autonomous pump means a poisoned shard; the panic resurfaces on the owner via exec
                .expect("autonomous shard pump failed");
            let worked = work_of(&host) != before;
            busy_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if worked {
                continue;
            }
        }
        // Nothing queued, nothing to pump: sleep until a command send or
        // a bridge crossing unparks us. Unpark tokens are sticky, so a
        // signal racing this park is not lost.
        std::thread::park();
    }
}

impl ShardedHost {
    /// Spins up `shards` worker threads (at least one), each owning a
    /// private reactor fabric plus the receive half of its bridge.
    pub fn new(shards: usize) -> ShardedHost {
        let autonomous = Arc::new(AtomicBool::new(true));
        let shards = (0..shards.max(1))
            .map(|i| {
                let (cmd_tx, cmd_rx) = channel();
                let (bridge_tx, bridge_rx) = BridgeLink::pair();
                let busy_ns = Arc::new(AtomicU64::new(0));
                let auto = Arc::clone(&autonomous);
                let busy = Arc::clone(&busy_ns);
                let join = std::thread::Builder::new()
                    .name(format!("pti-shard-{i}"))
                    .spawn(move || worker(cmd_rx, bridge_rx, auto, busy))
                    // pti-allow(panic-policy): thread spawn fails only on resource exhaustion at host construction, before any traffic
                    .expect("spawn shard thread");
                ShardHandle {
                    cmds: Some(cmd_tx),
                    join: Some(join),
                    bridge: bridge_tx,
                    busy_ns,
                }
            })
            .collect();
        ShardedHost {
            shards,
            directory: BTreeMap::new(),
            slots: Vec::new(),
            autonomous,
        }
    }

    /// Number of shards (== worker threads).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Mounted swarm count (tombstoned slots excluded).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no swarm is mounted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Toggles autonomous pumping. On (the default), an idle worker
    /// drains bridged traffic the moment a crossing wakes it. Off, a
    /// shard only works inside explicit commands — what the determinism
    /// tests and the R5 barrier rounds use, because it makes cross-shard
    /// arrival interleaving a function of the (serialized) round order
    /// alone.
    pub fn set_autonomous(&self, on: bool) {
        self.autonomous.store(on, Ordering::Relaxed);
        for shard in &self.shards {
            if let Some(join) = shard.join.as_ref() {
                join.thread().unpark();
            }
        }
    }

    /// The shard a peer id hash-pins to: `FxHash`-free, allocation-free
    /// multiplicative hashing — stable across runs and platforms, which
    /// the determinism tests rely on.
    pub fn shard_for(&self, peer: PeerId) -> usize {
        let h = (u64::from(peer.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Runs `f` on `shard`'s worker thread with its `ReactorHost`, and
    /// waits for the result. A panic inside `f` resurfaces here.
    pub fn exec<R: Send + 'static>(
        &self,
        shard: usize,
        f: impl FnOnce(&mut ReactorHost) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = channel();
        self.post(shard, move |host| {
            let result = catch_unwind(AssertUnwindSafe(|| f(host)));
            let _ = tx.send(result);
        });
        // pti-allow(panic-policy): the worker loop only exits when this host drops its sender, so a dead shard here is unrecoverable
        match rx.recv().expect("shard thread alive") {
            Ok(r) => r,
            Err(panic) => resume_unwind(panic),
        }
    }

    /// Fire-and-forget command: queued in FIFO order with everything
    /// else on the shard, no reply. Proxy broadcasts use this.
    fn post(&self, shard: usize, f: impl FnOnce(&mut ReactorHost) + Send + 'static) {
        let handle = &self.shards[shard];
        handle
            .cmds
            .as_ref()
            // pti-allow(panic-policy): cmds is only taken in shutdown(); posting after that is a stated API misuse
            .expect("host not shut down")
            .send(Box::new(f))
            // pti-allow(panic-policy): the worker loop only exits when this host drops its sender, so a dead shard here is unrecoverable
            .expect("shard thread alive");
        if let Some(join) = handle.join.as_ref() {
            join.thread().unpark();
        }
    }

    /// Re-scans `shard`'s registered peers and reconciles the directory:
    /// new peers are proxied onto every other shard, vanished peers have
    /// their proxies revoked everywhere.
    fn sync_directory(&mut self, shard: usize) {
        let current = self.exec(shard, |host| host.reactor().registered_peers());
        let known: Vec<PeerId> = self
            .directory
            .iter()
            .filter(|(_, s)| **s == shard)
            .map(|(p, _)| *p)
            .collect();
        for &peer in &current {
            if self.directory.insert(peer, shard) != Some(shard) {
                let bridge = self.shards[shard].bridge.clone();
                for other in 0..self.shards.len() {
                    if other != shard {
                        let b = bridge.clone();
                        self.post(other, move |host| host.reactor().register_proxy(peer, b));
                    }
                }
            }
        }
        for peer in known {
            if !current.contains(&peer) {
                self.directory.remove(&peer);
                for other in 0..self.shards.len() {
                    if other != shard {
                        self.post(other, move |host| host.reactor().unregister_proxy(peer));
                    }
                }
            }
        }
    }

    /// Mounts a member on the shard `primary` hash-pins to. The builder
    /// runs on the worker thread; the member never leaves it. Returns
    /// the global slot index.
    pub fn mount<M: MountedSwarm + 'static>(
        &mut self,
        primary: PeerId,
        build: impl FnOnce(ReactorNet) -> M + Send + 'static,
    ) -> usize {
        self.mount_pinned(self.shard_for(primary), build)
    }

    /// Mounts a member on an explicitly chosen shard — the placement
    /// override for experiments that want to control cross-shard edges.
    pub fn mount_pinned<M: MountedSwarm + 'static>(
        &mut self,
        shard: usize,
        build: impl FnOnce(ReactorNet) -> M + Send + 'static,
    ) -> usize {
        let local = self.exec(shard, move |host| host.mount(build));
        self.slots.push(Some((shard, local)));
        self.sync_directory(shard);
        self.slots.len() - 1
    }

    /// Unmounts the member at global `slot` (see
    /// [`ReactorHost::unmount`]); its peers' proxies are revoked on
    /// every other shard. Returns the undelivered messages dropped.
    pub fn unmount(&mut self, slot: usize) -> usize {
        // pti-allow(panic-policy): documented `# Panics` contract — slot handles are caller-owned
        let (shard, local) = self.slots[slot].take().expect("slot is already unmounted");
        let dropped = self.exec(shard, move |host| host.unmount(local));
        self.sync_directory(shard);
        dropped
    }

    /// The shard that owns global `slot`.
    ///
    /// # Panics
    /// If `slot` is out of range or unmounted.
    pub fn shard_of(&self, slot: usize) -> usize {
        // pti-allow(panic-policy): documented `# Panics` contract — slot handles are caller-owned
        self.slots[slot].expect("slot is unmounted").0
    }

    /// The shard that owns `peer`, if it is mounted anywhere.
    pub fn owner_of(&self, peer: PeerId) -> Option<usize> {
        self.directory.get(&peer).copied()
    }

    /// Runs `f` with the swarm at global `slot`, on its owning shard's
    /// thread. Membership changes `f` makes (peers added or removed)
    /// propagate to every other shard's proxy table before this returns.
    pub fn with_swarm<R: Send + 'static>(
        &mut self,
        slot: usize,
        f: impl FnOnce(&mut Swarm<ReactorNet>) -> R + Send + 'static,
    ) -> R {
        // pti-allow(panic-policy): documented `# Panics` contract — slot handles are caller-owned
        let (shard, local) = self.slots[slot].expect("slot is unmounted");
        let out = self.exec(shard, move |host| host.with_swarm(local, f));
        self.sync_directory(shard);
        out
    }

    /// Runs `f` with the concretely-typed member at global `slot` on its
    /// owning shard's thread (see [`ReactorHost::with_mounted`]), then
    /// reconciles the proxy directory like
    /// [`with_swarm`](Self::with_swarm).
    pub fn with_mounted<M: 'static, R: Send + 'static>(
        &mut self,
        slot: usize,
        f: impl FnOnce(&mut M) -> R + Send + 'static,
    ) -> R {
        // pti-allow(panic-policy): documented `# Panics` contract — slot handles are caller-owned
        let (shard, local) = self.slots[slot].expect("slot is unmounted");
        let out = self.exec(shard, move |host| host.with_mounted::<M, R>(local, f));
        self.sync_directory(shard);
        out
    }

    /// Drains every shard and every bridge: rounds of serialized
    /// per-shard `run_until_quiescent` commands, stopping only when a
    /// full round performs zero work **and** all bridges report zero
    /// pending — the two-phase barrier (a message in flight between two
    /// idle-looking shards keeps the loop alive). Reading the bridge
    /// counters between rounds is sound because the rounds themselves
    /// serialize every worker.
    ///
    /// # Errors
    /// The first protocol error any shard's swarm raises.
    pub fn run_until_quiescent(&mut self) -> Result<()> {
        loop {
            let mut work = 0u64;
            for shard in 0..self.shards.len() {
                work += self.exec(shard, |host| -> Result<u64> {
                    let before = work_of(host);
                    host.run_until_quiescent()?;
                    Ok(work_of(host) - before)
                })?;
            }
            let in_flight: u64 = self.shards.iter().map(|s| s.bridge.pending()).sum();
            if work == 0 && in_flight == 0 {
                return Ok(());
            }
        }
    }

    /// Per-shard reactor scheduling stats, indexed by shard.
    pub fn shard_stats(&self) -> Vec<ReactorStats> {
        (0..self.shards.len())
            .map(|shard| self.exec(shard, |host| host.reactor().stats()))
            .collect()
    }

    /// Per-shard injector-bridge counters, indexed by owning shard.
    pub fn bridge_stats(&self) -> Vec<BridgeStats> {
        self.shards.iter().map(|s| s.bridge.stats()).collect()
    }

    /// Fabric-wide traffic metrics: every shard's [`NetMetrics`] merged,
    /// bridge crossings included.
    pub fn metrics(&self) -> NetMetrics {
        let mut total = NetMetrics::default();
        for shard in 0..self.shards.len() {
            let m = self.exec(shard, |host| Transport::metrics(&host.reactor()));
            total.merge(&m);
        }
        total
    }

    /// Resets every shard's traffic metrics (scheduling stats and bridge
    /// counters are monotone and stay).
    pub fn reset_metrics(&mut self) {
        for shard in 0..self.shards.len() {
            self.exec(shard, |host| host.reactor().reset_metrics());
        }
    }

    /// Per-shard busy nanoseconds: time the workers spent executing
    /// commands and autonomous pumps. Under serialized barrier rounds
    /// the per-shard maximum is the critical path of the round sequence.
    pub fn busy_ns(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.busy_ns.load(Ordering::Relaxed))
            .collect()
    }

    /// Zeroes the busy-time counters (e.g. after setup, before the
    /// measured phase of an experiment).
    pub fn reset_busy(&self) {
        for shard in &self.shards {
            shard.busy_ns.store(0, Ordering::Relaxed);
        }
    }
}

impl Drop for ShardedHost {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            shard.cmds = None;
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                join.thread().unpark();
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swarm::kinds;
    use pti_conformance::ConformanceConfig;

    #[test]
    fn hash_pinning_is_stable_and_in_range() {
        let host = ShardedHost::new(4);
        for id in 0..256 {
            let s = host.shard_for(PeerId(id));
            assert!(s < 4);
            assert_eq!(s, host.shard_for(PeerId(id)), "same id, same shard");
        }
        // The multiplicative hash actually spreads ids around.
        let hit: std::collections::HashSet<usize> =
            (0..256).map(|id| host.shard_for(PeerId(id))).collect();
        assert_eq!(hit.len(), 4, "all shards receive some ids");
    }

    #[test]
    fn exec_runs_on_the_owning_worker_thread() {
        let host = ShardedHost::new(2);
        let name0 = host.exec(0, |_| std::thread::current().name().map(String::from));
        let name1 = host.exec(1, |_| std::thread::current().name().map(String::from));
        assert_eq!(name0.as_deref(), Some("pti-shard-0"));
        assert_eq!(name1.as_deref(), Some("pti-shard-1"));
    }

    #[test]
    fn exec_resurfaces_worker_panics_on_the_control_thread() {
        let host = ShardedHost::new(1);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            host.exec(0, |_| panic!("boom from the shard"));
        }));
        let payload = caught.unwrap_err();
        let text = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(text, "boom from the shard");
        // The worker survives a panicking command.
        assert_eq!(host.exec(0, |host| host.len()), 0);
    }

    #[test]
    fn cross_shard_sends_resolve_through_proxies_and_arrive() {
        let mut host = ShardedHost::new(2);
        host.set_autonomous(false);
        let a = host.mount_pinned(0, Swarm::over);
        let b = host.mount_pinned(1, Swarm::over);
        let pa = host.with_swarm(a, |s| {
            s.add_peer_as(PeerId(1), ConformanceConfig::pragmatic())
        });
        let pb = host.with_swarm(b, |s| {
            s.add_peer_as(PeerId(2), ConformanceConfig::pragmatic())
        });
        assert_eq!(host.owner_of(pa), Some(0));
        assert_eq!(host.owner_of(pb), Some(1));

        // A raw fabric send from shard 0 to shard 1 crosses the bridge...
        host.with_swarm(a, move |s| {
            s.net_mut()
                .send(pa, pb, kinds::OBJECT, vec![9u8, 9, 9].into())
                .unwrap();
        });
        assert_eq!(host.bridge_stats()[1].crossings, 1);
        // ...and lands in the remote ring once shard 1 drains its
        // injector (poll_message reads the raw ring — the payload here
        // is not a real protocol envelope, so we bypass the pump).
        assert_eq!(host.exec(1, |h| h.drain_injector()), 1);
        assert_eq!(host.bridge_stats()[1].drained, 1);
        let got = host.with_swarm(b, move |s| s.poll_message().unwrap());
        assert_eq!(got.map(|(at, m)| (at, m.from)), Some((pb, pa)));
        let m = host.metrics();
        assert_eq!(m.bridge_crossings, 1, "merged metrics count the crossing");
        assert_eq!(m.bridge_bytes, 3);
        assert_eq!(m.kind(kinds::OBJECT).messages, 1, "no double count");
    }

    #[test]
    fn unmount_revokes_proxies_everywhere() {
        let mut host = ShardedHost::new(2);
        host.set_autonomous(false);
        let a = host.mount_pinned(0, Swarm::over);
        let b = host.mount_pinned(1, Swarm::over);
        let pa = host.with_swarm(a, |s| {
            s.add_peer_as(PeerId(1), ConformanceConfig::pragmatic())
        });
        let pb = host.with_swarm(b, |s| {
            s.add_peer_as(PeerId(2), ConformanceConfig::pragmatic())
        });
        assert_eq!(host.len(), 2);
        assert_eq!(host.unmount(b), 0);
        assert_eq!(host.len(), 1);
        assert_eq!(host.owner_of(pb), None);
        // The proxy on shard 0 is gone: the send now fails like any
        // vanished peer, so swarms prune the route.
        let err = host.with_swarm(a, move |s| {
            s.net_mut().send(pa, pb, kinds::OBJECT, vec![1u8].into())
        });
        assert!(err.is_err(), "no proxy, no local ring: unknown peer");
        // Remount reuses the fabric and re-announces the peer.
        let b2 = host.mount_pinned(1, Swarm::over);
        let pb2 = host.with_swarm(b2, |s| {
            s.add_peer_as(PeerId(2), ConformanceConfig::pragmatic())
        });
        assert_eq!(host.owner_of(pb2), Some(1));
        host.with_swarm(a, move |s| {
            s.net_mut()
                .send(pa, pb2, kinds::OBJECT, vec![2u8].into())
                .unwrap();
        });
        assert_eq!(host.exec(1, |h| h.drain_injector()), 1);
        let got = host.with_swarm(b2, move |s| s.poll_message().unwrap());
        assert_eq!(got.map(|(_, m)| m.payload[0]), Some(2));
    }

    #[test]
    fn autonomous_workers_drain_bridged_traffic_without_the_barrier() {
        let host = ShardedHost::new(2);
        // Bare fabric endpoints (no mounted swarm): shard 1 owns peer 2,
        // shard 0 routes to it through a hand-registered proxy.
        host.exec(1, |h| {
            let mut hub = h.reactor();
            hub.register(PeerId(2));
        });
        let bridge = host.shards[1].bridge.clone();
        host.exec(0, move |h| {
            let mut hub = h.reactor();
            hub.register(PeerId(1));
            hub.register_proxy(PeerId(2), bridge);
            hub.send(PeerId(1), PeerId(2), kinds::OBJECT, vec![5u8].into())
                .unwrap();
        });
        // No barrier ran: shard 1's worker is woken by the crossing
        // itself and drains the injector on its own. Poll until the
        // drain shows up (the worker runs concurrently).
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while host.bridge_stats()[1].drained != 1 {
            assert!(Instant::now() < deadline, "worker never drained");
            std::thread::yield_now();
        }
        let got = host.exec(1, |h| h.reactor().try_recv(PeerId(2)));
        assert_eq!(got.map(|m| (m.from, m.payload[0])), Some((PeerId(1), 5)));
    }
}
