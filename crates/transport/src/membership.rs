//! Dynamic membership: who is on the fabric, and since when?
//!
//! PR 2's interest router is only correct for peers that were present
//! when an interest was gossiped — contacts were wired by hand and a
//! swarm that joined late never heard the existing SUBSCRIBEs, so routed
//! delivery silently starved its subscribers. This module closes that
//! gap with an lpbcast-flavoured membership view carried over the same
//! control-gossip path as the interest messages:
//!
//! * [`MembershipView`] — the per-swarm set of known remote peers, each
//!   under a *generation stamp*. Stamps are minted by the peer's owning
//!   swarm and only ever compared per peer, so a monotonic per-swarm
//!   counter is enough: gossip is at-least-once and unordered, and the
//!   stamp decides whether a JOIN/LEAVE is news or a stale replay.
//!   Departures leave tombstones so a late echo of an old JOIN cannot
//!   resurrect a peer that already left.
//! * [`ViewDelta`] — the wire form all three membership kinds share:
//!   `JOIN` (a joiner announces its peers + interests and asks for the
//!   current state), `VIEW` (state transfer: live members, tombstones,
//!   and a re-announcement of every live interest in the sender's
//!   routing table) and `LEAVE` (departures). The interest lines are
//!   what make a late joiner converge to the same routing table the
//!   founders replicated via `subscribe` gossip.
//!
//! The protocol handlers live in `Swarm` (`join`/`leave`/`on_join`/…);
//! this module owns the pure state + codec so both can be tested
//! without a fabric.

use std::collections::BTreeMap;

use pti_metamodel::Guid;
use pti_net::PeerId;

use crate::error::{Result, TransportError};
use crate::routing::Signature;

/// The set of known remote peers, each under the generation stamp of its
/// latest membership announcement, plus tombstones for departed peers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipView {
    live: BTreeMap<PeerId, u64>,
    departed: BTreeMap<PeerId, u64>,
}

impl MembershipView {
    /// An empty view.
    pub fn new() -> MembershipView {
        MembershipView::default()
    }

    /// The live members in id order.
    pub fn members(&self) -> impl Iterator<Item = (PeerId, u64)> + '_ {
        self.live.iter().map(|(&p, &g)| (p, g))
    }

    /// Tombstoned (departed) members in id order.
    pub fn tombstones(&self) -> impl Iterator<Item = (PeerId, u64)> + '_ {
        self.departed.iter().map(|(&p, &g)| (p, g))
    }

    /// Whether a peer is currently considered live.
    pub fn is_live(&self, peer: PeerId) -> bool {
        self.live.contains_key(&peer)
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no member is known.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Learns that `peer` announced itself at `gen`. Returns `true` when
    /// the peer *became* live (it was unknown, or its tombstone is older
    /// than this announcement) — the caller wires a contact exactly then.
    /// A replay at or below a tombstoned generation is stale and ignored.
    pub fn add(&mut self, peer: PeerId, gen: u64) -> bool {
        if self.departed.get(&peer).is_some_and(|&dead| dead >= gen) {
            return false;
        }
        self.departed.remove(&peer);
        match self.live.get_mut(&peer) {
            Some(cur) => {
                *cur = (*cur).max(gen);
                false
            }
            None => {
                self.live.insert(peer, gen);
                true
            }
        }
    }

    /// Learns that `peer` departed at `gen`. Returns `true` when the
    /// peer *ceased* being live — the caller retires its contact and
    /// routes exactly then. A departure older than the latest join is a
    /// stale replay and ignored; the tombstone keeps the newest
    /// generation either way.
    pub fn retire(&mut self, peer: PeerId, gen: u64) -> bool {
        if self.live.get(&peer).is_some_and(|&alive| alive > gen) {
            return false;
        }
        let was_live = self.live.remove(&peer).is_some();
        let dead = self.departed.entry(peer).or_insert(gen);
        *dead = (*dead).max(gen);
        was_live
    }

    /// Locally retires a peer that stopped answering (send-failure
    /// pruning): tombstoned at its last announced generation, so only a
    /// *newer* announcement can bring it back. Returns whether it was
    /// live.
    pub fn forget(&mut self, peer: PeerId) -> bool {
        match self.live.get(&peer).copied() {
            Some(gen) => self.retire(peer, gen),
            None => false,
        }
    }

    /// Erases every trace of a peer — entry *and* tombstone. For ids
    /// this swarm takes ownership of: an owned peer must never appear in
    /// the remote view, not even as a departure it would then gossip.
    pub fn purge(&mut self, peer: PeerId) {
        self.live.remove(&peer);
        self.departed.remove(&peer);
    }
}

/// One interest re-announcement inside a [`ViewDelta`]: a subscriber,
/// the interest's identity, and its routing signature — exactly the
/// triple `subscribe` gossip carries, batched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterestAnnounce {
    /// The subscribing peer.
    pub subscriber: PeerId,
    /// Identity of the interest (same-named interests from different
    /// vendors stay distinct).
    pub interest: Guid,
    /// The routing signature events are matched against.
    pub signature: Signature,
}

/// The payload all membership kinds share: live members, departures, and
/// interest re-announcements.
///
/// Wire form is line-oriented text, consistent with the interest gossip:
/// `M <id> <gen>` per live member, `D <id> <gen>` per departure,
/// `I <id> <guid> <signature>` per interest (the signature is
/// [`Signature::encode`]'s token form and may contain spaces, so it is
/// the line's tail).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewDelta {
    /// Peers announced live, with their generation stamps.
    pub live: Vec<(PeerId, u64)>,
    /// Peers announced departed, with their generation stamps.
    pub departed: Vec<(PeerId, u64)>,
    /// Interests (re-)announced alongside the membership change.
    pub interests: Vec<InterestAnnounce>,
}

impl ViewDelta {
    /// Whether the delta carries no information.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty() && self.departed.is_empty() && self.interests.is_empty()
    }

    /// Encodes the delta into wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::new();
        for (peer, gen) in &self.live {
            out.push_str(&format!("M {} {gen}\n", peer.0));
        }
        for (peer, gen) in &self.departed {
            out.push_str(&format!("D {} {gen}\n", peer.0));
        }
        for a in &self.interests {
            out.push_str(&format!(
                "I {} {} {}\n",
                a.subscriber.0,
                a.interest,
                a.signature.encode()
            ));
        }
        out.into_bytes()
    }

    /// Decodes the wire form produced by [`encode`](Self::encode).
    ///
    /// # Errors
    /// Malformed lines (unknown tag, bad id/generation/guid).
    pub fn decode(payload: &[u8]) -> Result<ViewDelta> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| TransportError::Protocol("membership gossip not utf8".into()))?;
        let mut delta = ViewDelta::default();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let bad = || TransportError::Protocol(format!("malformed membership line `{line}`"));
            let mut parts = line.splitn(2, ' ');
            let tag = parts.next().unwrap_or_default();
            let rest = parts.next().ok_or_else(bad)?;
            match tag {
                "M" | "D" => {
                    let (id, gen) = rest.split_once(' ').ok_or_else(bad)?;
                    let entry = (
                        PeerId(id.trim().parse().map_err(|_| bad())?),
                        gen.trim().parse().map_err(|_| bad())?,
                    );
                    if tag == "M" {
                        delta.live.push(entry);
                    } else {
                        delta.departed.push(entry);
                    }
                }
                "I" => {
                    let (id, rest) = rest.split_once(' ').ok_or_else(bad)?;
                    let (guid, signature) = rest.split_once(' ').ok_or_else(bad)?;
                    delta.interests.push(InterestAnnounce {
                        subscriber: PeerId(id.trim().parse().map_err(|_| bad())?),
                        interest: guid.trim().parse().map_err(|_| bad())?,
                        signature: Signature::decode(signature),
                    });
                }
                _ => return Err(bad()),
            }
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_idempotent_and_reports_freshness() {
        let mut v = MembershipView::new();
        assert!(v.add(PeerId(1), 1), "first sighting is news");
        assert!(!v.add(PeerId(1), 1), "replay is not");
        assert!(!v.add(PeerId(1), 3), "newer stamp refreshes silently");
        assert_eq!(v.members().collect::<Vec<_>>(), vec![(PeerId(1), 3)]);
        assert!(v.is_live(PeerId(1)));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn retire_tombstones_and_blocks_stale_joins() {
        let mut v = MembershipView::new();
        v.add(PeerId(1), 2);
        assert!(v.retire(PeerId(1), 2), "departure at same gen wins");
        assert!(!v.is_live(PeerId(1)));
        assert!(!v.add(PeerId(1), 2), "stale JOIN echo stays dead");
        assert!(!v.add(PeerId(1), 1), "older echo too");
        assert!(v.add(PeerId(1), 3), "a genuine re-join revives");
        assert!(v.is_live(PeerId(1)));
        assert!(v.tombstones().next().is_none(), "revival clears the stone");
    }

    #[test]
    fn stale_leave_cannot_kill_a_newer_join() {
        let mut v = MembershipView::new();
        v.add(PeerId(7), 5);
        assert!(!v.retire(PeerId(7), 4), "old LEAVE replay ignored");
        assert!(v.is_live(PeerId(7)));
        assert!(v.retire(PeerId(7), 5));
        assert!(!v.retire(PeerId(7), 5), "already gone");
    }

    #[test]
    fn forget_uses_last_announced_generation() {
        let mut v = MembershipView::new();
        assert!(!v.forget(PeerId(3)), "unknown peer is a no-op");
        v.add(PeerId(3), 4);
        assert!(v.forget(PeerId(3)));
        assert!(!v.add(PeerId(3), 4), "same-gen replay stays dead");
        assert!(v.add(PeerId(3), 5), "an actual re-join works");
    }

    #[test]
    fn purge_erases_entry_and_tombstone() {
        let mut v = MembershipView::new();
        v.add(PeerId(4), 2);
        v.forget(PeerId(4));
        v.purge(PeerId(4));
        assert!(v.tombstones().next().is_none(), "no stone left to gossip");
        assert!(!v.is_live(PeerId(4)));
        assert!(v.add(PeerId(4), 1), "no stale tombstone blocks a re-add");
    }

    #[test]
    fn delta_roundtrips_including_catch_all_signatures() {
        let delta = ViewDelta {
            live: vec![(PeerId(1), 3), (PeerId(2), 1)],
            departed: vec![(PeerId(9), 7)],
            interests: vec![
                InterestAnnounce {
                    subscriber: PeerId(2),
                    interest: Guid::derive("A", "x"),
                    signature: Signature::of_name("StockQuote"),
                },
                InterestAnnounce {
                    subscriber: PeerId(2),
                    interest: Guid::derive("B", "x"),
                    signature: Signature::catch_all(),
                },
            ],
        };
        let back = ViewDelta::decode(&delta.encode()).unwrap();
        assert_eq!(back, delta);
        assert!(!back.is_empty());
        assert_eq!(ViewDelta::decode(b"").unwrap(), ViewDelta::default());
        assert!(ViewDelta::default().is_empty());
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        assert!(ViewDelta::decode(b"X 1 2").is_err(), "unknown tag");
        assert!(ViewDelta::decode(b"M 1").is_err(), "missing generation");
        assert!(ViewDelta::decode(b"M x 2").is_err(), "bad id");
        assert!(ViewDelta::decode(b"I 1 not-a-guid *").is_err());
        assert!(ViewDelta::decode(&[0xff, 0xfe]).is_err(), "not utf8");
    }
}
