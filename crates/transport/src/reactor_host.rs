//! The reactor host: one thread, N swarms, readiness-driven stepping.
//!
//! A [`ReactorHost`] owns many [`Swarm<ReactorNet>`] instances mounted
//! on one shared [`ReactorNet`] fabric and runs a cooperative event
//! loop over them:
//!
//! 1. **Drain** — pop the next ready session off the fabric's wakeup
//!    queue and pump its swarm, at most [`fairness
//!    budget`](ReactorHost::set_fairness_budget) messages per wakeup. A
//!    swarm with leftover backlog goes to the *back* of the queue, so a
//!    chatty swarm round-robins with its neighbours instead of
//!    monopolising the thread.
//! 2. **Park** — with nothing ready, jump the virtual clock to the next
//!    timer deadline and fire it ([`run_for`](ReactorHost::run_for));
//!    or, if no timers are in scope, stop
//!    ([`run_until_quiescent`](ReactorHost::run_until_quiescent)).
//!    There is no busy-wait and no OS sleep anywhere in the loop.
//!
//! The host steps *only* ready swarms: ten thousand idle members cost
//! zero cycles between events, which is what lets the R4 experiment
//! drive 1k+ members through the interest router on a single thread.

use pti_net::bridge::BridgeRx;
use pti_net::{ReactorNet, SessionId};

use crate::error::Result;
use crate::swarm::Swarm;

/// Default per-wakeup message budget — small enough that a flooded swarm
/// yields quickly, large enough to amortise the scheduling overhead.
pub const DEFAULT_FAIRNESS_BUDGET: usize = 32;

/// Anything a [`ReactorHost`] can mount and pump: the host needs mutable
/// access to the underlying [`Swarm<ReactorNet>`], however the member
/// wraps it (a bare swarm, or a `TypedPubSub` handle from `pti-tps`).
pub trait MountedSwarm {
    /// Runs `f` with the member's swarm. Implementations that guard the
    /// swarm behind a lock acquire it for the duration of the call.
    fn with_swarm_mut(&mut self, f: &mut dyn FnMut(&mut Swarm<ReactorNet>));

    /// The member as `Any`, so callers that know the concrete mounted
    /// type (e.g. a `TypedPubSub` group on a sharded host) can get it
    /// back via [`ReactorHost::with_mounted`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl MountedSwarm for Swarm<ReactorNet> {
    fn with_swarm_mut(&mut self, f: &mut dyn FnMut(&mut Swarm<ReactorNet>)) {
        f(self);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Slot {
    session: SessionId,
    member: Box<dyn MountedSwarm>,
}

/// A single-threaded driver for many swarms on one [`ReactorNet`].
///
/// See the [module docs](self) for the event-loop phases. Slots are
/// addressed by the `usize` index [`mount`](Self::mount) returns.
pub struct ReactorHost {
    hub: ReactorNet,
    /// Tombstoned slot table: [`unmount`](Self::unmount) leaves a `None`
    /// behind so every other slot index stays stable.
    slots: Vec<Option<Slot>>,
    budget: usize,
    /// When tracing, every pump is recorded as `(slot, handled)`.
    trace: Option<Vec<(usize, usize)>>,
    /// Cross-shard injector: messages other shards bridged over, drained
    /// into the fabric at the top of each run-loop turn.
    injector: Option<BridgeRx>,
    /// Cumulative messages drained off the injector.
    injected: u64,
}

impl std::fmt::Debug for ReactorHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorHost")
            .field("swarms", &self.len())
            .field("budget", &self.budget)
            .finish()
    }
}

impl Default for ReactorHost {
    fn default() -> ReactorHost {
        ReactorHost::new()
    }
}

impl ReactorHost {
    /// Creates a host over a fresh reactor fabric.
    pub fn new() -> ReactorHost {
        ReactorHost {
            hub: ReactorNet::new(),
            slots: Vec::new(),
            budget: DEFAULT_FAIRNESS_BUDGET,
            trace: None,
            injector: None,
            injected: 0,
        }
    }

    /// A handle onto the host's fabric (the hub session — register
    /// nothing on it; use it for metrics, stats, or to open sessions).
    pub fn reactor(&self) -> ReactorNet {
        self.hub.clone()
    }

    /// Mounted swarm count (tombstoned slots excluded).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no swarm is mounted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replaces the per-wakeup fairness budget: how many messages one
    /// swarm may handle per scheduling turn before it must yield.
    pub fn set_fairness_budget(&mut self, budget: usize) {
        self.budget = budget.max(1);
    }

    /// Mounts a member built over a fresh session of the shared fabric
    /// and returns its slot index. The builder receives the session's
    /// [`ReactorNet`] handle and typically moves it into
    /// [`Swarm::over`]/[`Swarm::with_code_registry`].
    pub fn mount<M: MountedSwarm + 'static>(
        &mut self,
        build: impl FnOnce(ReactorNet) -> M,
    ) -> usize {
        let session = self.hub.session();
        let id = session.session_id();
        let member = Box::new(build(session));
        self.slots.push(Some(Slot {
            session: id,
            member,
        }));
        self.slots.len() - 1
    }

    /// Unmounts the swarm at `slot`: unregisters every endpoint its
    /// swarm owns (dropping whatever sat undelivered in their rings),
    /// releases the session's readiness state, and tombstones the slot
    /// so other slot indices stay stable. Returns the number of
    /// undelivered messages dropped. A later [`mount`](Self::mount)
    /// reuses the fabric, not the slot.
    ///
    /// # Panics
    /// If `slot` is out of range or already unmounted.
    pub fn unmount(&mut self, slot: usize) -> usize {
        // pti-allow(panic-policy): documented `# Panics` contract — slot handles are caller-owned
        let mut taken = self.slots[slot].take().expect("slot is already unmounted");
        let mut peers = Vec::new();
        taken
            .member
            .with_swarm_mut(&mut |swarm| peers = swarm.peer_ids());
        let mut dropped = 0;
        for peer in peers {
            dropped += self.hub.unregister(peer);
        }
        self.hub.release_session(taken.session);
        dropped
    }

    /// Attaches a cross-shard injector: a bridge receiver whose messages
    /// are drained into the fabric at the top of each run-loop turn.
    /// The sharded host gives every shard one.
    pub fn set_injector(&mut self, rx: BridgeRx) {
        self.injector = Some(rx);
    }

    /// Drains the injector into the fabric's inbound rings, marking the
    /// owning sessions ready. Returns how many messages were drained
    /// (injects for unknown peers are drained — and counted — but
    /// dropped by the fabric). The run loops call this each turn; it is
    /// public so a shard's outer driver can pump between loops.
    pub fn drain_injector(&mut self) -> usize {
        let Some(rx) = self.injector.as_ref() else {
            return 0;
        };
        let mut drained = 0;
        while let Some(msg) = rx.try_drain() {
            self.hub.inject(msg);
            drained += 1;
        }
        self.injected += drained as u64;
        drained
    }

    /// Cumulative messages drained off the injector since the host was
    /// created — part of the work delta the sharded drain barrier sums.
    pub fn injected_total(&self) -> u64 {
        self.injected
    }

    /// Runs `f` with the swarm mounted at `slot`.
    ///
    /// # Panics
    /// If `slot` is out of range or unmounted.
    pub fn with_swarm<R>(&mut self, slot: usize, f: impl FnOnce(&mut Swarm<ReactorNet>) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        // pti-allow(panic-policy): documented `# Panics` contract — slot handles are caller-owned
        let s = self.slots[slot].as_mut().expect("slot is unmounted");
        s.member.with_swarm_mut(&mut |swarm| {
            if let Some(f) = f.take() {
                out = Some(f(swarm));
            }
        });
        // pti-allow(panic-policy): MountedSwarm implementations always invoke the callback exactly once
        out.expect("with_swarm_mut must invoke its callback")
    }

    /// Runs `f` with the concretely-typed member mounted at `slot` —
    /// how a caller that mounted a wrapper (e.g. a `TypedPubSub` group)
    /// gets the wrapper itself back rather than the inner swarm.
    ///
    /// # Panics
    /// If `slot` is out of range, unmounted, or holds a different type.
    pub fn with_mounted<M: 'static, R>(&mut self, slot: usize, f: impl FnOnce(&mut M) -> R) -> R {
        // pti-allow(panic-policy): documented `# Panics` contract — slot handles are caller-owned
        let s = self.slots[slot].as_mut().expect("slot is unmounted");
        let m = s
            .member
            .as_any_mut()
            .downcast_mut::<M>()
            // pti-allow(panic-policy): documented `# Panics` contract — the caller names the concrete mounted type
            .expect("mounted member has a different concrete type");
        f(m)
    }

    /// Schedules a timer wakeup for the swarm at `slot` after `delay_us`
    /// of virtual time — the reactor-side replacement for a
    /// `recv_deadline` timeout: the slot parks for free and
    /// [`run_for`](Self::run_for) pumps it when the clock arrives.
    pub fn wake_after(&self, slot: usize, delay_us: u64) {
        // pti-allow(panic-policy): documented `# Panics` contract — slot handles are caller-owned
        let s = self.slots[slot].as_ref().expect("slot is unmounted");
        self.hub.schedule_wake(s.session, delay_us);
    }

    /// Starts recording `(slot, handled)` per pump — how tests assert
    /// fairness and wakeup order.
    pub fn set_pump_trace(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the recorded pump trace (empty if tracing is off).
    pub fn take_pump_trace(&mut self) -> Vec<(usize, usize)> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The fabric session backing `slot`.
    ///
    /// # Panics
    /// If `slot` is out of range or unmounted.
    pub fn session_of(&self, slot: usize) -> SessionId {
        self.slots[slot]
            .as_ref()
            // pti-allow(panic-policy): documented `# Panics` contract — slot handles are caller-owned
            .expect("slot is unmounted")
            .session
    }

    fn slot_of(&self, session: SessionId) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| s.session == session))
    }

    /// One scheduling turn: pump the slot's swarm with the fairness
    /// budget; if backlog remains it rejoins the queue at the back.
    fn pump_slot(&mut self, idx: usize) -> Result<()> {
        let budget = self.budget;
        let (handled, retransmit_deadline) = self.with_swarm(idx, |swarm| -> Result<_> {
            let handled = swarm.pump(budget)?;
            Ok((handled, swarm.next_delivery_deadline_us()))
        })?;
        if let Some(trace) = self.trace.as_mut() {
            trace.push((idx, handled));
        }
        let session = self.slots[idx]
            .as_ref()
            // pti-allow(panic-policy): the pump queue only holds indices of slots that are still mounted
            .expect("pumped slot exists")
            .session;
        if self.hub.backlog(session) > 0 {
            self.hub.mark_ready(session);
        }
        // A swarm with unacknowledged reliable traffic parks on the
        // timer wheel until its earliest retransmit deadline, so
        // run_for's clock jumps land exactly on the backoff schedule.
        if let Some(deadline) = retransmit_deadline {
            let delay = deadline.saturating_sub(self.hub.now_us());
            self.hub.schedule_wake(session, delay);
        }
        Ok(())
    }

    /// Kicks every mounted swarm once (queued wire frames flush, pending
    /// messages get a first scheduling turn) — the way brand-new mounts
    /// with un-flushed joins enter the readiness loop.
    fn kick_all(&mut self) -> Result<()> {
        for idx in 0..self.slots.len() {
            if self.slots[idx].is_some() {
                self.pump_slot(idx)?;
            }
        }
        Ok(())
    }

    /// Drains the ready queue until no swarm has pending traffic: the
    /// reactor-host counterpart of [`Swarm::run`]. Timers are *not*
    /// serviced — a parked slot stays parked (use
    /// [`run_for`](Self::run_for) to advance the clock).
    ///
    /// # Errors
    /// Protocol violations or runtime failures inside any swarm.
    pub fn run_until_quiescent(&mut self) -> Result<()> {
        self.drain_injector();
        self.kick_all()?;
        loop {
            while let Some(session) = self.hub.next_ready() {
                if let Some(idx) = self.slot_of(session) {
                    self.pump_slot(idx)?;
                }
            }
            // Bridged traffic may have landed while we pumped; a turn
            // that drains nothing new means this shard is quiescent
            // (the *fabric-wide* barrier is the sharded host's job).
            if self.drain_injector() == 0 {
                return Ok(());
            }
        }
    }

    /// Runs for `virtual_us` of virtual time: drains ready swarms, then
    /// parks — jumping the clock straight to the next timer deadline in
    /// the window and pumping whoever it wakes — until the window is
    /// spent and the fabric is quiet. The reactor-host counterpart of
    /// [`Swarm::run_for`], with clock jumps in place of idle sleeps.
    ///
    /// # Errors
    /// Same conditions as [`run_until_quiescent`](Self::run_until_quiescent).
    pub fn run_for(&mut self, virtual_us: u64) -> Result<()> {
        let deadline = self.hub.now_us().saturating_add(virtual_us);
        self.drain_injector();
        self.kick_all()?;
        loop {
            while let Some(session) = self.hub.next_ready() {
                if let Some(idx) = self.slot_of(session) {
                    self.pump_slot(idx)?;
                }
            }
            if self.drain_injector() > 0 {
                continue;
            }
            if !self.hub.advance_idle_until(deadline) {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swarm::kinds;
    use pti_net::{PeerId, Transport};

    #[test]
    fn mount_allocates_distinct_sessions_and_slots() {
        let mut host = ReactorHost::new();
        assert!(host.is_empty());
        let a = host.mount(Swarm::over);
        let b = host.mount(Swarm::over);
        assert_eq!((a, b), (0, 1));
        assert_eq!(host.len(), 2);
        assert_ne!(host.session_of(a), host.session_of(b));
    }

    #[test]
    fn with_swarm_returns_the_closure_value() {
        let mut host = ReactorHost::new();
        let a = host.mount(Swarm::over);
        let n = host.with_swarm(a, |swarm| {
            swarm.add_peer(pti_conformance::ConformanceConfig::pragmatic());
            swarm.peer_ids().len()
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn fabric_traffic_wakes_the_owning_slot() {
        let mut host = ReactorHost::new();
        let a = host.mount(Swarm::over);
        let b = host.mount(Swarm::over);
        // Peer ids are global on a shared fabric, exactly like multiple
        // swarms sharing one LiveBus.
        let pa = host.with_swarm(a, |s| {
            s.add_peer_as(PeerId(1), pti_conformance::ConformanceConfig::pragmatic())
        });
        let pb = host.with_swarm(b, |s| {
            s.add_peer_as(PeerId(2), pti_conformance::ConformanceConfig::pragmatic())
        });
        // A fabric-level send marks b's slot (and only b's) ready; the
        // owning swarm pops it off its ring on its next poll.
        let hub = host.reactor();
        host.with_swarm(a, |s| {
            s.net_mut()
                .send(pa, pb, kinds::OBJECT, vec![1u8].into())
                .unwrap();
        });
        assert!(hub.has_ready());
        assert_eq!(hub.backlog(host.session_of(b)), 1);
        assert_eq!(hub.backlog(host.session_of(a)), 0);
        let got = host.with_swarm(b, |s| s.poll_message().unwrap());
        assert_eq!(got.map(|(at, m)| (at, m.from)), Some((pb, pa)));
        assert_eq!(hub.backlog(host.session_of(b)), 0);
    }
}
