//! # pti-transport — the optimistic transport protocol (Figure 1)
//!
//! The paper's protocol for exchanging objects of possibly-unknown types
//! between peers, "optimistic in the sense that the code of the object as
//! well as its type representation are not always sent with the object
//! itself, but only when needed":
//!
//! 1. **Receiving an object** — the hybrid envelope arrives (type id +
//!    download paths + payload).
//! 2. **Asking for the new object type information** — only if the type
//!    is unknown locally.
//! 3. **Receiving type information, rules check** — implicit structural
//!    conformance against the peer's *types of interest*.
//! 4. **Types conform, asking for the code** — only after a successful
//!    check.
//! 5. **Receiving the code, object usable** — assembly installed, object
//!    deserialized, wrapped in a dynamic proxy for the matched interest.
//!
//! A [`Swarm`] wires [`Peer`]s to any [`Transport`](pti_net::Transport)
//! fabric and drives this exchange: [`SimSwarm`] (= `Swarm<SimNet>`) is
//! the deterministic virtual-time engine the experiments run on, and
//! [`LiveSwarm`] (= `Swarm<LiveBus>`) runs the *identical* state machine
//! over real threads, with a shared [`CodeRegistry`] standing in for a
//! code server. [`Swarm::send_object_eager`] implements the
//! ship-everything baseline the protocol is measured against
//! (experiment F1).
//!
//! ## Lint conventions
//!
//! This crate is deny-tier for the `pti-lint` fabric rules (see
//! `crates/analyze` and the "Static analysis" section of
//! ARCHITECTURE.md): no wall-clock reads on the protocol or codec
//! paths, hash-map iteration is banned in the files whose order reaches
//! the wire or a compared log (`membership`, `routing`, `swarm`,
//! `sharded`, `peer`), thread primitives live only in `sharded`, and
//! every `unwrap`/`expect`/`panic!` needs a
//! `pti-allow(panic-policy): reason` comment stating the invariant that
//! makes it unreachable.
//!
//! ## Example
//!
//! ```
//! use pti_conformance::ConformanceConfig;
//! use pti_metamodel::{Assembly, TypeDef, TypeDescription, Value, bodies, primitives};
//! use pti_net::NetConfig;
//! use pti_serialize::PayloadFormat;
//! use pti_transport::{Delivery, Swarm};
//!
//! let mut swarm = Swarm::new(NetConfig::default());
//! let alice = swarm.add_peer(ConformanceConfig::pragmatic());
//! let bob = swarm.add_peer(ConformanceConfig::pragmatic());
//!
//! // Alice publishes her Person implementation.
//! let person = TypeDef::class("Person", "alice")
//!     .field("name", primitives::STRING)
//!     .method("getName", vec![], primitives::STRING)
//!     .ctor(vec![])
//!     .build();
//! let g = person.guid;
//! swarm.publish(alice, Assembly::builder("alice-person")
//!     .ty(person.clone())
//!     .body(g, "getName", 0, bodies::getter("name"))
//!     .ctor_body(g, 0, bodies::ctor_assign(&[]))
//!     .build())?;
//!
//! // Bob is interested in structurally conformant Persons.
//! let bob_person = TypeDef::class("Person", "bob")
//!     .field("name", primitives::STRING)
//!     .method("getName", vec![], primitives::STRING)
//!     .build();
//! swarm.peer_mut(bob).subscribe(TypeDescription::from_def(&bob_person));
//!
//! // Alice sends an object; the protocol fetches description + code.
//! let h = swarm.peer_mut(alice).runtime.instantiate(&"Person".into(), &[])?;
//! swarm.peer_mut(alice).runtime.set_field(h, "name", Value::from("ada"))?;
//! swarm.send_object(alice, bob, &Value::Obj(h), PayloadFormat::Binary)?;
//! swarm.run()?;
//!
//! let deliveries = swarm.peer_mut(bob).take_deliveries();
//! let Delivery::Accepted { proxy: Some(proxy), .. } = &deliveries[0] else { panic!() };
//! let got = proxy.invoke(&mut swarm.peer_mut(bob).runtime, "getName", &[])?;
//! assert_eq!(got.as_str()?, "ada");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod code;
mod delivery;
mod error;
mod membership;
mod peer;
pub mod reactor_host;
mod routing;
pub mod sharded;
mod swarm;

pub use code::CodeRegistry;
pub use delivery::{
    decode_reliable_header, DeliveryConfig, DeliveryEngine, DeliveryStats, Inbound, PollOutcome,
    QoS, RetainedEvent, RELIABLE_HEADER_LEN,
};
pub use error::{Result, TransportError};
pub use membership::{InterestAnnounce, MembershipView, ViewDelta};
pub use peer::{Delivery, Peer, PeerProvider, ProtocolStats, Published};
pub use reactor_host::{MountedSwarm, ReactorHost, DEFAULT_FAIRNESS_BUDGET};
pub use routing::{RoutingTable, Signature};
pub use sharded::ShardedHost;
pub use swarm::{
    kinds, FloodOutcome, LiveSwarm, ReactorSwarm, SimSwarm, Swarm, DEFAULT_WIRE_MAX_BYTES,
    DEFAULT_WIRE_MAX_FRAMES,
};
