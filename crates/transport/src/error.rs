//! Errors of the transport protocol.

use std::fmt;

use pti_metamodel::{MetamodelError, TypeName};
use pti_net::{NetError, PeerId};
use pti_serialize::SerializeError;

/// Errors raised by the optimistic transport protocol engine.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The simulated network rejected an operation.
    Net(NetError),
    /// A payload failed to (de)serialize.
    Serialize(SerializeError),
    /// The local runtime rejected an operation.
    Metamodel(MetamodelError),
    /// Referenced peer does not exist in the swarm.
    UnknownPeer(PeerId),
    /// An object of this type cannot be sent because the type was never
    /// published (no assembly/download-path provenance).
    NoProvenance(TypeName),
    /// A download path does not resolve to any published artifact.
    UnknownPath(String),
    /// Only objects (not bare primitives containing objects) may carry
    /// assembly provenance; malformed protocol payloads land here too.
    Protocol(String),
    /// A reliable (at-least-once) link exhausted its retransmit budget:
    /// the peer never acknowledged within `max_retries` exponential
    /// backoff rounds and is presumed gone.
    Unreachable(PeerId),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Net(e) => write!(f, "net: {e}"),
            Self::Serialize(e) => write!(f, "serialize: {e}"),
            Self::Metamodel(e) => write!(f, "runtime: {e}"),
            Self::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            Self::NoProvenance(t) => {
                write!(
                    f,
                    "type `{t}` has no published assembly (publish it before sending)"
                )
            }
            Self::UnknownPath(p) => write!(f, "no artifact published at `{p}`"),
            Self::Protocol(m) => write!(f, "protocol violation: {m}"),
            Self::Unreachable(p) => {
                write!(f, "peer {p} unreachable (retransmit retries exhausted)")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<NetError> for TransportError {
    fn from(e: NetError) -> Self {
        Self::Net(e)
    }
}
impl From<SerializeError> for TransportError {
    fn from(e: SerializeError) -> Self {
        Self::Serialize(e)
    }
}
impl From<MetamodelError> for TransportError {
    fn from(e: MetamodelError) -> Self {
        Self::Metamodel(e)
    }
}

/// Result alias for transport operations.
pub type Result<T> = std::result::Result<T, TransportError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = TransportError::NoProvenance(TypeName::new("Person"));
        assert!(e.to_string().contains("publish it before sending"));
        let e2: TransportError = NetError::UnknownPeer(PeerId(3)).into();
        assert!(e2.to_string().contains("peer-3"));
    }
}
