//! The protocol engine driving Figure 1 of the paper over any transport
//! fabric — plus the *eager* baseline it is compared against (design
//! decision D4).
//!
//! Optimistic exchange of one object:
//!
//! 1. sender ships the hybrid envelope (type names + GUIDs + download
//!    paths + serialized payload) — message kind `object`;
//! 2. if the receiver does not know the type it requests the type
//!    *description* (kinds `desc-request` / `desc-response`);
//! 3. the receiver checks implicit structural conformance against its
//!    types of interest; on failure the exchange ends — **no code ever
//!    crosses the wire**;
//! 4. on success the receiver downloads the assemblies (kinds
//!    `asm-request` / `asm-response`), installs them, deserializes the
//!    object and wraps it in a dynamic proxy for the matched interest.
//!
//! The eager baseline ships descriptions + code with every object
//! (kind `eager-object`), which is what a subtype-propagating RMI-style
//! middleware does; the byte difference between the two protocols is
//! experiment F1.
//!
//! The engine is generic over [`Transport`], so the *same* state machine
//! runs on the deterministic virtual-time [`SimNet`] (as [`SimSwarm`],
//! for reproducible experiments) and on the threaded
//! [`LiveBus`](pti_net::LiveBus) (as [`LiveSwarm`], one swarm per thread
//! over a shared fabric, for genuinely concurrent load).

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::time::{Duration, Instant};

use pti_conformance::ConformanceConfig;
use pti_metamodel::{Assembly, Guid, TypeDescription, Value};
use pti_net::{
    BusMessage, FrameBatch, LiveBus, NetConfig, NetError, Payload, PeerId, ReactorNet, SimNet,
    Transport,
};
use pti_proxy::DynamicProxy;
use pti_serialize::{
    description_from_xml, description_to_xml, EnvelopeWireFormat, ObjectEnvelope, PayloadFormat,
};
use pti_xml::Element;

use crate::code::CodeRegistry;
use crate::delivery::{DeliveryEngine, DeliveryStats, Inbound, QoS, RELIABLE_HEADER_LEN};
use crate::error::{Result, TransportError};
use crate::membership::{InterestAnnounce, MembershipView, ViewDelta};
use crate::peer::{Delivery, Peer, PendingObject};
use crate::routing::{RoutingTable, Signature};

/// Message kind tags on the wire.
pub mod kinds {
    /// Coalesced frame batch for one `(from, to)` link (fabric-level
    /// kind; the frames inside carry protocol kinds).
    pub use pti_net::kinds::BATCH;

    /// Optimistic object envelope.
    pub const OBJECT: &str = "object";
    /// Type-description fetch request.
    pub const DESC_REQUEST: &str = "desc-request";
    /// Type-description fetch response.
    pub const DESC_RESPONSE: &str = "desc-response";
    /// Assembly (code) fetch request.
    pub const ASM_REQUEST: &str = "asm-request";
    /// Assembly (code) fetch response.
    pub const ASM_RESPONSE: &str = "asm-response";
    /// Eager-baseline object message (envelope + descriptions + code).
    pub const EAGER_OBJECT: &str = "eager-object";
    /// Interest registration gossip (routing-table update).
    pub const SUBSCRIBE: &str = "subscribe";
    /// Interest retraction gossip (routing-table update).
    pub const UNSUBSCRIBE: &str = "unsubscribe";
    /// Membership: a swarm announces its peers (and their interests) and
    /// asks for the current view.
    pub const JOIN: &str = "join";
    /// Membership: a swarm announces its peers' departure.
    pub const LEAVE: &str = "leave";
    /// Membership: state transfer — live members, tombstones, and a
    /// re-announcement of every live interest in the sender's routing
    /// table.
    pub const VIEW: &str = "view";
    /// At-least-once object envelope: a 20-byte reliability header
    /// (link seq, publisher, event seq) followed by the ordinary
    /// envelope bytes. See `crate::delivery`.
    pub const OBJECT_R: &str = "object-r";
    /// Cumulative acknowledgement for one link's reliable frames.
    pub const ACK: &str = "ack";

    /// Every protocol kind that may travel *inside* a frame batch —
    /// the single source of truth [`intern`] and [`is_protocol`] share
    /// (nested batches are deliberately absent).
    const BATCHABLE: [&str; 13] = [
        OBJECT,
        DESC_REQUEST,
        DESC_RESPONSE,
        ASM_REQUEST,
        ASM_RESPONSE,
        EAGER_OBJECT,
        SUBSCRIBE,
        UNSUBSCRIBE,
        JOIN,
        LEAVE,
        VIEW,
        OBJECT_R,
        ACK,
    ];

    /// Whether a kind tag belongs to the core transport protocol (as
    /// opposed to an embedding layer like remoting).
    pub fn is_protocol(kind: &str) -> bool {
        kind == BATCH || intern(kind).is_some()
    }

    /// Maps a kind decoded from a frame batch back to its static tag.
    /// `None` for kinds that may not travel inside a batch (including
    /// nested batches).
    pub fn intern(kind: &str) -> Option<&'static str> {
        BATCHABLE.iter().find(|k| **k == kind).copied()
    }
}

/// A queued wire frame: the kind tag plus its (shared) payload.
type QueuedFrame = (&'static str, Payload);

/// Default per-link wire-batch cap: frames per batch message.
pub const DEFAULT_WIRE_MAX_FRAMES: usize = 32;
/// Default per-link wire-batch cap: payload bytes per batch message.
pub const DEFAULT_WIRE_MAX_BYTES: usize = 64 * 1024;

/// What a [`Swarm::flood_object`] broadcast accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FloodOutcome {
    /// Peers the object was delivered to.
    pub sent: usize,
    /// Peers found unreachable (retired from routing/contacts; owned
    /// protocol state preserved) — the caller prunes its membership.
    pub departed: Vec<PeerId>,
}

/// A set of peers wired to one transport fabric, with the out-of-band
/// code registry.
///
/// On a [`SimNet`] one swarm owns every peer and drives the whole
/// exchange deterministically. On a live fabric several swarms — one per
/// thread, each owning *its* peers — share the fabric handle's clones
/// and a [`CodeRegistry`], and the identical protocol code runs
/// concurrently.
pub struct Swarm<T: Transport = SimNet> {
    net: T,
    peers: BTreeMap<PeerId, Peer>,
    code: CodeRegistry,
    next_id: u32,
    budget: usize,
    /// Interest index: local subscriptions applied directly, remote ones
    /// learned from `subscribe`/`unsubscribe` gossip.
    routes: RoutingTable,
    /// Remote peers (owned by sibling swarms on a shared fabric) that
    /// receive interest gossip and flood sends. Wired automatically by
    /// the membership protocol ([`join`](Self::join)); the manual
    /// [`add_contact`](Self::add_contact) escape hatch remains for
    /// static topologies.
    contacts: BTreeSet<PeerId>,
    /// The membership view: remote peers under generation stamps, with
    /// tombstones for departures. Contacts wired via gossip live here;
    /// send-failure pruning retires view and routes together.
    membership: MembershipView,
    /// Generation counter for this swarm's own membership announcements.
    view_gen: u64,
    /// Frames queued per `(from, to)` link, shipped in bounded batches
    /// at the next [`flush_wire`](Self::flush_wire).
    wire: BTreeMap<(PeerId, PeerId), Vec<QueuedFrame>>,
    /// Wire-batch cap: at most this many frames per batch message.
    wire_max_frames: usize,
    /// Wire-batch cap: at most this many payload bytes per batch message
    /// (a single oversized frame still ships, alone).
    wire_max_bytes: usize,
    /// Which encoding object envelopes travel with (binary by default;
    /// XML stays available for cross-language wires — receivers sniff
    /// and accept either regardless of this setting).
    wire_format: EnvelopeWireFormat,
    /// The at-least-once machinery: link sequencing, ACK/retransmit
    /// state, credit windows, dedup watermarks, replay rings.
    delivery: DeliveryEngine,
    /// Per-message dispatch failures the pump loops isolated instead of
    /// aborting on — one malformed frame must not wedge a healthy
    /// swarm. Drained by [`take_dispatch_errors`](Self::take_dispatch_errors).
    dispatch_errors: Vec<(PeerId, TransportError)>,
}

/// The deterministic virtual-time swarm every experiment runs on.
pub type SimSwarm = Swarm<SimNet>;

/// A swarm over the threaded bus: genuinely concurrent peers, same
/// protocol.
pub type LiveSwarm = Swarm<LiveBus>;

/// A swarm over the readiness-driven reactor fabric: thousands of these
/// share one thread under a
/// [`ReactorHost`](crate::reactor_host::ReactorHost), same protocol.
pub type ReactorSwarm = Swarm<ReactorNet>;

impl<T: Transport> std::fmt::Debug for Swarm<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Swarm")
            .field("peers", &self.peers.len())
            .field("published_paths", &self.code.len())
            .field("routes", &self.routes.len())
            .field("contacts", &self.contacts.len())
            .field("view", &self.membership.len())
            .finish()
    }
}

impl Swarm<SimNet> {
    /// Creates a swarm over a fresh simulated network with the given
    /// link parameters.
    pub fn new(config: NetConfig) -> SimSwarm {
        Swarm::over(SimNet::new(config))
    }
}

impl<T: Transport> Swarm<T> {
    /// Creates a swarm over an existing transport with its own (empty)
    /// code registry.
    pub fn over(transport: T) -> Swarm<T> {
        Swarm::with_code_registry(transport, CodeRegistry::new())
    }

    /// Creates a swarm over an existing transport sharing a code
    /// registry — the way concurrent swarms on one [`LiveBus`] resolve
    /// each other's published assemblies.
    pub fn with_code_registry(transport: T, code: CodeRegistry) -> Swarm<T> {
        Swarm {
            net: transport,
            peers: BTreeMap::new(),
            code,
            next_id: 1,
            budget: 1_000_000,
            routes: RoutingTable::new(),
            contacts: BTreeSet::new(),
            membership: MembershipView::new(),
            view_gen: 0,
            wire: BTreeMap::new(),
            wire_max_frames: DEFAULT_WIRE_MAX_FRAMES,
            wire_max_bytes: DEFAULT_WIRE_MAX_BYTES,
            wire_format: EnvelopeWireFormat::default(),
            delivery: DeliveryEngine::default(),
            dispatch_errors: Vec::new(),
        }
    }

    /// Adds a peer with the given conformance configuration, assigning
    /// the next free local id.
    pub fn add_peer(&mut self, config: ConformanceConfig) -> PeerId {
        let id = PeerId(self.next_id);
        self.next_id += 1;
        self.add_peer_as(id, config)
    }

    /// Adds a peer under an explicit id — required on a shared fabric
    /// where each swarm must pick ids that don't collide with its
    /// neighbours'. If the swarm already joined a group (it has
    /// contacts), the newcomer is announced with a VIEW so every remote
    /// engine's membership and flood targets include it.
    pub fn add_peer_as(&mut self, id: PeerId, config: ConformanceConfig) -> PeerId {
        self.net.register(id);
        self.next_id = self.next_id.max(id.0 + 1);
        // Owned peers and contacts stay disjoint: flood and gossip
        // would otherwise target the id twice — and an owned peer must
        // leave the remote view entirely (a leftover tombstone would be
        // gossiped as a departure of our own member).
        self.contacts.remove(&id);
        self.membership.purge(id);
        self.peers.insert(id, Peer::new(id, config));
        if !self.contacts.is_empty() {
            self.view_gen += 1;
            let delta = ViewDelta {
                live: vec![(id, self.view_gen)],
                departed: Vec::new(),
                interests: Vec::new(),
            };
            self.gossip(id, kinds::VIEW, delta.encode());
        }
        id
    }

    /// Whether this swarm owns a peer under the given id.
    pub fn has_peer(&self, id: PeerId) -> bool {
        self.peers.contains_key(&id)
    }

    /// Ids of the peers this swarm owns.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.peers.keys().copied().collect()
    }

    /// Immutable access to a peer.
    pub fn peer(&self, id: PeerId) -> &Peer {
        &self.peers[&id]
    }

    /// Mutable access to a peer.
    pub fn peer_mut(&mut self, id: PeerId) -> &mut Peer {
        // pti-allow(panic-policy): documented `# Panics` contract — peer handles come from add_peer on this swarm
        self.peers.get_mut(&id).expect("unknown peer")
    }

    /// The underlying transport (metrics, clock on a [`SimNet`]).
    pub fn net(&self) -> &T {
        &self.net
    }

    /// Mutable access to the underlying transport.
    pub fn net_mut(&mut self) -> &mut T {
        &mut self.net
    }

    /// A snapshot of the fabric-wide traffic counters.
    pub fn metrics(&self) -> pti_net::NetMetrics {
        self.net.metrics()
    }

    /// Resets network traffic counters.
    pub fn reset_metrics(&mut self) {
        self.net.reset_metrics();
    }

    /// The shared code registry (clone it into sibling swarms).
    pub fn code_registry(&self) -> CodeRegistry {
        self.code.clone()
    }

    /// Publishes an assembly at a peer: local install + shared code
    /// registry entry so other peers can "download" it by path.
    ///
    /// # Errors
    /// Installation conflicts.
    pub fn publish(&mut self, peer: PeerId, assembly: Assembly) -> Result<()> {
        let p = self
            .peers
            .get_mut(&peer)
            .ok_or(TransportError::UnknownPeer(peer))?;
        let published = p.publish(assembly)?;
        self.code
            .insert(published.asm_path.clone(), published.assembly.clone());
        Ok(())
    }

    /// Sends an object with the optimistic protocol (Figure 1, message 1).
    ///
    /// # Errors
    /// Missing provenance, serialization failures, unknown peers.
    pub fn send_object(
        &mut self,
        from: PeerId,
        to: PeerId,
        root: &Value,
        format: PayloadFormat,
    ) -> Result<()> {
        let sender = self
            .peers
            .get(&from)
            .ok_or(TransportError::UnknownPeer(from))?;
        let envelope = sender.make_envelope(root, format)?;
        let payload = self.encode_envelope(&envelope);
        self.net.send(from, to, kinds::OBJECT, payload)?;
        Ok(())
    }

    /// Replaces the envelope wire encoding ([`EnvelopeWireFormat::Ptib`]
    /// by default). Receiving is format-agnostic either way — dispatch
    /// sniffs the binary magic and falls back to XML, so mixed-format
    /// groups interoperate.
    pub fn set_envelope_wire_format(&mut self, wire: EnvelopeWireFormat) {
        self.wire_format = wire;
    }

    /// The envelope encoding outbound objects travel with.
    pub fn envelope_wire_format(&self) -> EnvelopeWireFormat {
        self.wire_format
    }

    /// Selects the delivery guarantee for routed objects
    /// ([`QoS::FireAndForget`] by default — the pre-durability
    /// behavior). Under [`QoS::AtLeastOnce`],
    /// [`route_object`](Self::route_object) sequences, acknowledges,
    /// and retransmits until delivered or the retry budget surfaces
    /// [`TransportError::Unreachable`].
    pub fn set_qos(&mut self, qos: QoS) {
        self.delivery.config_mut().qos = qos;
    }

    /// The delivery guarantee routed objects currently travel with.
    pub fn qos(&self) -> QoS {
        self.delivery.config().qos
    }

    /// Replaces the per-link credit window: the number of
    /// unacknowledged reliable frames a sender keeps in flight before
    /// buffering (zero is treated as 1).
    pub fn set_credit_window(&mut self, window: usize) {
        self.delivery.config_mut().credit_window = window.max(1);
    }

    /// Replaces the per-topic replay-ring depth: how many routed events
    /// each topic retains for catch-up replay to late joiners (0 — the
    /// default — disables replay).
    pub fn set_replay_depth(&mut self, depth: usize) {
        self.delivery.config_mut().replay_depth = depth;
    }

    /// Replaces the retransmit schedule: the initial backoff in fabric
    /// microseconds (doubling each round) and how many rounds to try
    /// before declaring a link's peer unreachable.
    pub fn set_retransmit(&mut self, base_us: u64, max_retries: u32) {
        let cfg = self.delivery.config_mut();
        cfg.retransmit_base_us = base_us.max(1);
        cfg.max_retries = max_retries;
    }

    /// A snapshot of the at-least-once delivery counters.
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.delivery.stats()
    }

    /// The earliest armed retransmit deadline (fabric microseconds), if
    /// any reliable link is waiting on an ACK — what a host schedules
    /// its timer wheel by.
    pub fn next_delivery_deadline_us(&self) -> Option<u64> {
        self.delivery.next_deadline_us()
    }

    /// Whether any reliable link still has unacknowledged or
    /// credit-blocked traffic.
    pub fn delivery_unsettled(&self) -> bool {
        self.delivery.has_unsettled()
    }

    /// Drains the per-message dispatch failures the pump loops isolated
    /// (keyed by the owned peer whose inbox produced the message). A
    /// clean pump leaves this empty.
    pub fn take_dispatch_errors(&mut self) -> Vec<(PeerId, TransportError)> {
        std::mem::take(&mut self.dispatch_errors)
    }

    /// Encodes an envelope for the wire exactly once per publish (the
    /// fabric's [`NetMetrics::payload_encodes`](pti_net::NetMetrics)
    /// counter pins that), producing the shared buffer every destination
    /// link reuses.
    fn encode_envelope(&mut self, envelope: &ObjectEnvelope) -> Payload {
        self.net.record_payload_encode();
        Payload::from(envelope.encode_wire(self.wire_format))
    }

    /// Declares a remote contact: a peer owned by a sibling swarm on the
    /// shared fabric. Contacts receive interest gossip (so their swarm's
    /// routing table learns this swarm's subscriptions) and flood sends.
    pub fn add_contact(&mut self, peer: PeerId) {
        if !self.peers.contains_key(&peer) {
            self.contacts.insert(peer);
        }
    }

    /// The declared remote contacts.
    pub fn contacts(&self) -> Vec<PeerId> {
        self.contacts.iter().copied().collect()
    }

    /// The membership view: remote peers learned from JOIN/LEAVE/VIEW
    /// gossip, with their generation stamps and tombstones.
    pub fn membership(&self) -> &MembershipView {
        &self.membership
    }

    /// Joins the group reachable through `seed` (any peer of an
    /// established swarm on the shared fabric) — the replacement for
    /// manual `add_contact` chains.
    ///
    /// A `join` message announces this swarm's peers and their live
    /// interests; the established swarm replies with its full view *and
    /// a re-announcement of every live interest in its routing table*,
    /// and relays the announcement to the rest of the group. Once both
    /// sides pump ([`run`](Self::run)/[`run_for`](Self::run_for)), a
    /// late joiner resolves the same subscriber set as a founding swarm.
    ///
    /// # Errors
    /// No owned peer to speak with, joining through an owned peer, or an
    /// unreachable seed.
    pub fn join(&mut self, seed: PeerId) -> Result<()> {
        let speaker = *self
            .peers
            .keys()
            .next()
            .ok_or_else(|| TransportError::Protocol("join requires an owned peer".into()))?;
        if self.peers.contains_key(&seed) {
            return Err(TransportError::Protocol(format!(
                "cannot join through own peer {seed}"
            )));
        }
        self.view_gen += 1;
        let gen = self.view_gen;
        let announce = ViewDelta {
            live: self.peers.keys().map(|&p| (p, gen)).collect(),
            departed: Vec::new(),
            // Interests subscribed before joining ride along, so the
            // group learns them without a re-subscribe.
            interests: self.interest_announcements(true),
        };
        // State changes only after the handshake is actually in flight —
        // a failed join must not leave a phantom contact behind.
        self.net
            .send(speaker, seed, kinds::JOIN, announce.encode().into())?;
        // The seed's generation is unknown until its VIEW arrives; stamp
        // it at zero so any real announcement refreshes it.
        self.contacts.insert(seed);
        self.membership.add(seed, 0);
        Ok(())
    }

    /// Leaves the group: announces every owned peer's departure to all
    /// contacts, then drops everything learned from the group (contacts,
    /// membership view, remote routing entries). Owned peers and their
    /// local state survive — the swarm can [`join`](Self::join) again.
    pub fn leave(&mut self) {
        if let Some(&speaker) = self.peers.keys().next() {
            if !self.contacts.is_empty() {
                self.view_gen += 1;
                let gen = self.view_gen;
                let delta = ViewDelta {
                    live: Vec::new(),
                    departed: self.peers.keys().map(|&p| (p, gen)).collect(),
                    interests: Vec::new(),
                };
                self.gossip(speaker, kinds::LEAVE, delta.encode());
            }
        }
        let remote: Vec<PeerId> = self.contacts.iter().copied().collect();
        for peer in remote {
            self.routes.remove_peer(peer);
            self.delivery.shed_peer(peer);
        }
        self.contacts.clear();
        self.membership = MembershipView::new();
    }

    /// Announces one owned peer's departure to the group and removes it
    /// — what a shard does when a member migrates elsewhere. Receivers
    /// retire the peer from their view *and* routing table together, so
    /// no further traffic targets it; the member re-announces its
    /// interests from its new home. Returns the removed peer's protocol
    /// state, or `None` if the peer was not owned.
    pub fn depart_peer(&mut self, peer: PeerId) -> Option<Peer> {
        if !self.peers.contains_key(&peer) {
            return None;
        }
        if !self.contacts.is_empty() {
            self.view_gen += 1;
            let delta = ViewDelta {
                live: Vec::new(),
                departed: vec![(peer, self.view_gen)],
                interests: Vec::new(),
            };
            self.gossip(peer, kinds::LEAVE, delta.encode());
        }
        self.remove_peer(peer)
    }

    /// Routing entries as announce triples — all of them for a VIEW
    /// state transfer, only the *owned* peers' for a JOIN (so pre-join
    /// subscriptions reach the group).
    fn interest_announcements(&self, own_only: bool) -> Vec<InterestAnnounce> {
        self.routes
            .entries()
            .filter(|(p, _, _)| !own_only || self.peers.contains_key(p))
            .map(|(p, g, s)| InterestAnnounce {
                subscriber: p,
                interest: g,
                signature: s.clone(),
            })
            .collect()
    }

    /// The full state a VIEW transfer carries: every live member (own
    /// peers freshly stamped, remote ones under their recorded
    /// generations), every tombstone, and every live interest in the
    /// routing table.
    fn full_view_delta(&mut self) -> ViewDelta {
        self.view_gen += 1;
        let gen = self.view_gen;
        let mut live: Vec<(PeerId, u64)> = self.peers.keys().map(|&p| (p, gen)).collect();
        live.extend(self.membership.members());
        ViewDelta {
            live,
            departed: self.membership.tombstones().collect(),
            interests: self.interest_announcements(false),
        }
    }

    /// Merges a membership delta: newly live peers become contacts,
    /// fresh departures retire contact + routes together, and interest
    /// re-announcements feed the routing table (idempotently — gossip is
    /// at-least-once). Entries about *owned* peers are skipped: this
    /// swarm is the authority on its own members.
    ///
    /// Every *newly met* contact then receives a hello VIEW announcing
    /// this swarm's members and their interests. This closes the
    /// join-window hole: gossip emitted while the contact list was still
    /// just the seed (a subscribe right after `join`, a peer added
    /// before convergence) reached nobody else — introducing ourselves
    /// to each peer we learn about repairs that without any re-relay
    /// (an already-known member refreshes idempotently, so hellos
    /// cannot echo back and forth).
    fn apply_view_delta(&mut self, delta: &ViewDelta) {
        let mut met: Vec<PeerId> = Vec::new();
        for &(peer, gen) in &delta.live {
            if self.peers.contains_key(&peer) {
                continue;
            }
            if self.membership.add(peer, gen) {
                self.contacts.insert(peer);
                met.push(peer);
            } else if self.membership.is_live(peer) {
                self.contacts.insert(peer);
            }
        }
        for &(peer, gen) in &delta.departed {
            if self.peers.contains_key(&peer) {
                continue;
            }
            let retired = self.membership.retire(peer, gen);
            // A manually wired contact (`add_contact`) never entered the
            // view, so `retire` reports nothing — the departure must
            // still take it (and its routes) out. Only a *stale* LEAVE
            // (the view knows a newer join) keeps the peer.
            if retired || !self.membership.is_live(peer) {
                self.contacts.remove(&peer);
                self.routes.remove_peer(peer);
            }
        }
        for a in &delta.interests {
            if self.peers.contains_key(&a.subscriber) {
                continue;
            }
            // Only live peers route; a tombstoned subscriber's interests
            // arriving late must not resurrect its routes.
            if !self.membership.is_live(a.subscriber) && !self.contacts.contains(&a.subscriber) {
                continue;
            }
            // Same guard as `on_subscribe`: an unroutable empty
            // signature is ignored rather than indexed.
            if a.signature.is_catch_all() || !a.signature.tokens().is_empty() {
                self.routes
                    .insert(a.subscriber, a.interest, a.signature.clone());
            }
        }
        if met.is_empty() {
            return;
        }
        let Some(&speaker) = self.peers.keys().next() else {
            return;
        };
        self.view_gen += 1;
        let gen = self.view_gen;
        let hello: Payload = ViewDelta {
            live: self.peers.keys().map(|&p| (p, gen)).collect(),
            departed: Vec::new(),
            interests: self.interest_announcements(true),
        }
        .encode()
        .into();
        for &to in &met {
            self.queue_frame(speaker, to, kinds::VIEW, hello.clone());
        }
        self.replay_retained_to(&met);
    }

    /// Catch-up replay: offers every retained event whose topic matches
    /// a newly met peer's interests, as reliable frames from the
    /// original publisher with the original event sequence — the
    /// (publisher, event_seq) watermark on the receiving side keeps a
    /// rejoining subscriber that already saw part of the ring from
    /// seeing it twice.
    fn replay_retained_to(&mut self, met: &[PeerId]) {
        if met.is_empty() || self.delivery.config().replay_depth == 0 {
            return;
        }
        let now = self.net.now_us();
        for (topic, events) in self.delivery.replay_snapshot() {
            let resolved = self.routes.resolve_name(&topic);
            let targets: Vec<PeerId> = resolved
                .iter()
                .copied()
                .filter(|p| met.contains(p))
                .collect();
            for to in targets {
                for ev in &events {
                    // Rings only ever hold locally published events, but
                    // the publisher may have been removed since.
                    if !self.peers.contains_key(&ev.publisher) {
                        continue;
                    }
                    self.delivery.stats_mut().replayed += 1;
                    if let Some(frame) = self.delivery.offer(
                        ev.publisher,
                        to,
                        ev.publisher,
                        ev.event_seq,
                        &ev.bytes,
                        now,
                    ) {
                        self.queue_frame(ev.publisher, to, kinds::OBJECT_R, frame);
                    }
                }
            }
        }
    }

    /// Handles a JOIN: merge the joiner's announcement, reply with the
    /// full view (membership *and* every live interest — the late-join
    /// re-announcement), and relay the announcement to the rest of the
    /// group so established swarms learn the newcomer without their own
    /// handshake. Replies and relays ride the wire queue, so a burst of
    /// joins batches per link.
    fn on_join(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        let delta = ViewDelta::decode(&msg.payload)?;
        self.apply_view_delta(&delta);
        let reply = self.full_view_delta();
        self.queue_frame(at, msg.from, kinds::VIEW, reply.encode());
        let newcomers: BTreeSet<PeerId> = delta.live.iter().map(|&(p, _)| p).collect();
        let relay: Payload = delta.encode().into();
        let targets: Vec<PeerId> = self
            .contacts
            .iter()
            .copied()
            .filter(|c| *c != msg.from && !newcomers.contains(c))
            .collect();
        for to in targets {
            self.queue_frame(at, to, kinds::VIEW, relay.clone());
        }
        Ok(())
    }

    /// Handles a VIEW (state transfer or relay) or a LEAVE (departure
    /// announcement): merge, no reply — neither kind propagates further,
    /// so gossip storms cannot echo.
    fn on_view_update(&mut self, _at: PeerId, msg: BusMessage) -> Result<()> {
        let delta = ViewDelta::decode(&msg.payload)?;
        self.apply_view_delta(&delta);
        Ok(())
    }

    /// The interest index this swarm routes by.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// Registers a type of interest at a peer *and* indexes it for
    /// routing: the local table is updated directly and a `subscribe`
    /// gossip message goes to every remote contact. Unreachable contacts
    /// are pruned rather than failing the subscription.
    ///
    /// The routing signature respects the peer's *type-name* matcher:
    /// profiles the token prefilter can model exactly or conservatively
    /// (exact, token-subsequence) get a token signature; anything looser
    /// (Levenshtein, wildcards, synonyms) gets the catch-all signature,
    /// so the subscriber keeps flood semantics and filters locally
    /// instead of being silently starved.
    ///
    /// # Panics
    /// If `peer` is not owned by this swarm.
    pub fn subscribe(&mut self, peer: PeerId, interest: TypeDescription) {
        use pti_conformance::NameMatcher;
        let matcher = &self.peer(peer).checker.config().type_names;
        let signature = match matcher {
            NameMatcher::Exact | NameMatcher::Levenshtein(0) | NameMatcher::TokenSubsequence => {
                Signature::of_description(&interest)
            }
            _ => Signature::catch_all(),
        };
        let guid = interest.guid;
        self.peer_mut(peer).subscribe(interest);
        // A name with no identifier tokens cannot be routed by signature
        // (it could never match an event name); the interest still works
        // locally for flood-delivered objects, but it neither enters the
        // index nor crosses the wire.
        if !signature.is_catch_all() && signature.tokens().is_empty() {
            return;
        }
        self.routes.insert(peer, guid, signature.clone());
        let payload = format!("{guid}\n{}", signature.encode()).into_bytes();
        self.gossip(peer, kinds::SUBSCRIBE, payload);
    }

    /// Retracts an interest by identity: the peer stops matching it, the
    /// routing table drops it, and an `unsubscribe` gossip message goes
    /// to every remote contact. Returns whether the interest was still
    /// registered at the peer.
    ///
    /// # Panics
    /// If `peer` is not owned by this swarm.
    pub fn unsubscribe(&mut self, peer: PeerId, interest: Guid) -> bool {
        let removed = self.peer_mut(peer).unsubscribe(interest);
        self.routes.remove(peer, interest);
        if removed {
            let payload = interest.to_string().into_bytes();
            self.gossip(peer, kinds::UNSUBSCRIBE, payload);
        }
        removed
    }

    /// Sends a control message from `peer` to every remote contact,
    /// pruning contacts that are no longer reachable. The payload is
    /// shared across the fan-out, not copied per contact.
    fn gossip(&mut self, peer: PeerId, kind: &'static str, payload: impl Into<Payload>) {
        let payload = payload.into();
        let contacts: Vec<PeerId> = self.contacts.iter().copied().collect();
        for to in contacts {
            if let Err(NetError::UnknownPeer(p)) = self.net.send(peer, to, kind, payload.clone()) {
                self.forget_peer(p);
            }
        }
    }

    /// Retires a departed peer from the routing table and contact list:
    /// future routed and flood sends stop targeting it. The protocol
    /// state of an *owned* peer is preserved (handles stay valid, its
    /// collected deliveries stay drainable) — use
    /// [`remove_peer`](Self::remove_peer) to drop that too.
    pub fn forget_peer(&mut self, peer: PeerId) {
        self.contacts.remove(&peer);
        self.routes.remove_peer(peer);
        // Tombstone at the last announced generation so a stale gossip
        // echo cannot resurrect the departed peer; a genuine re-join
        // (fresh generation) still can.
        self.membership.forget(peer);
        // Sequencing, watermark, and retransmit state for the departed
        // peer is shed with it — a rejoin starts clean links.
        self.delivery.shed_peer(peer);
    }

    /// Removes an *owned* peer entirely: its protocol state is dropped
    /// and its interests leave the routing table — what a layer above
    /// does when it learns the peer's fabric registration vanished.
    /// Returns the removed peer, if it was owned.
    pub fn remove_peer(&mut self, peer: PeerId) -> Option<Peer> {
        let removed = self.peers.remove(&peer);
        self.contacts.remove(&peer);
        self.routes.remove_peer(peer);
        self.membership.forget(peer);
        self.delivery.shed_peer(peer);
        removed
    }

    /// Routes an object to every subscriber whose interest signature
    /// matches the object's type — the interest-indexed replacement for
    /// publisher-side broadcast. Frames are queued per `(from, to)` link
    /// and coalesced into one wire message each at the next pump
    /// ([`run`](Self::run)/[`run_for`](Self::run_for) flush implicitly,
    /// or call [`flush_wire`](Self::flush_wire)). Returns how many
    /// subscribers the object was routed to (the sender itself is never
    /// one).
    ///
    /// # Errors
    /// Missing provenance or serialization failures.
    pub fn route_object(
        &mut self,
        from: PeerId,
        root: &Value,
        format: PayloadFormat,
    ) -> Result<usize> {
        let sender = self
            .peers
            .get(&from)
            .ok_or(TransportError::UnknownPeer(from))?;
        // The envelope is built unconditionally so provenance and
        // serialization errors surface even when nobody subscribes yet
        // (a publish to nobody must not hide a developer error until
        // the first subscriber arrives).
        let envelope = sender.make_envelope(root, format)?;
        // Memoized resolution: steady-state publishing of a known event
        // type is one name lookup, no token splitting or matching.
        let resolved = self.routes.resolve_name(envelope.type_name.simple());
        let targets = || resolved.iter().copied().filter(|&p| p != from);
        let sent = targets().count();
        if sent == 0 {
            return Ok(0);
        }
        // One encode per publish; each destination link shares the same
        // buffer (a Payload clone is a refcount bump, not a byte copy).
        let payload = self.encode_envelope(&envelope);
        if self.delivery.config().qos == QoS::AtLeastOnce {
            let topic = envelope.type_name.simple().to_string();
            let event_seq = self.delivery.next_event_seq(from);
            self.delivery
                .retain(&topic, from, event_seq, payload.clone());
            let now = self.net.now_us();
            for to in targets() {
                // Credit-gated: a zero-credit link buffers inside the
                // engine and the refill rides the next ACK.
                if let Some(frame) = self
                    .delivery
                    .offer(from, to, from, event_seq, &payload, now)
                {
                    self.queue_frame(from, to, kinds::OBJECT_R, frame);
                }
            }
        } else {
            for to in targets() {
                self.queue_frame(from, to, kinds::OBJECT, payload.clone());
            }
        }
        Ok(sent)
    }

    /// Sends an object to *every* peer on the fabric this swarm can name
    /// (owned peers and contacts) regardless of interest — the broadcast
    /// escape hatch routed delivery replaces, kept as the baseline the
    /// routing experiment measures against. Unreachable peers are
    /// retired from the routing table and contact list (an owned peer's
    /// protocol state is preserved) and reported in the outcome so the
    /// caller can prune its own membership.
    ///
    /// # Errors
    /// Missing provenance or serialization failures.
    pub fn flood_object(
        &mut self,
        from: PeerId,
        root: &Value,
        format: PayloadFormat,
    ) -> Result<FloodOutcome> {
        let sender = self
            .peers
            .get(&from)
            .ok_or(TransportError::UnknownPeer(from))?;
        let envelope = sender.make_envelope(root, format)?;
        let payload = self.encode_envelope(&envelope);
        let targets: Vec<PeerId> = self
            .peers
            .keys()
            .copied()
            .chain(self.contacts.iter().copied())
            .filter(|p| *p != from)
            .collect();
        let mut outcome = FloodOutcome::default();
        for to in targets {
            match self.net.send(from, to, kinds::OBJECT, payload.clone()) {
                Ok(()) => outcome.sent += 1,
                Err(NetError::UnknownPeer(p)) => {
                    self.forget_peer(p);
                    outcome.departed.push(p);
                }
            }
        }
        Ok(outcome)
    }

    /// Queues a frame on the `(from, to)` link; the next
    /// [`flush_wire`](Self::flush_wire) ships each link's queue as one
    /// wire message (the frame itself if alone, a
    /// [`kinds::BATCH`] otherwise).
    pub fn queue_frame(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: &'static str,
        payload: impl Into<Payload>,
    ) {
        // pti-allow(unbounded-queue): the wire queue drains fully at
        // every flush; sustained growth is bounded by the credit window
        // on reliable links and by the caller's publish rate otherwise.
        self.wire
            .entry((from, to))
            .or_default()
            .push((kind, payload.into()));
    }

    /// Number of frames currently queued for the wire.
    pub fn queued_frames(&self) -> usize {
        self.wire.values().map(Vec::len).sum()
    }

    /// Replaces the per-link wire-batch cap (defaults
    /// [`DEFAULT_WIRE_MAX_FRAMES`]/[`DEFAULT_WIRE_MAX_BYTES`]): a flush
    /// ships at most `max_frames` frames and `max_bytes` payload bytes
    /// per batch message, splitting a larger burst into several bounded
    /// batches. Zero values are treated as 1 — a batch always carries at
    /// least one frame, and a single oversized frame still ships alone.
    pub fn set_wire_cap(&mut self, max_frames: usize, max_bytes: usize) {
        self.wire_max_frames = max_frames.max(1);
        self.wire_max_bytes = max_bytes.max(1);
    }

    /// Flushes the wire queue. Each `(from, to)` link's frames ship in
    /// queue order as the fewest messages the cap allows: a lone frame
    /// as itself, up to `max_frames`/`max_bytes` per coalesced
    /// [`kinds::BATCH`], a burst beyond the cap as several bounded
    /// batches (counted per link in
    /// [`NetMetrics::batch_splits`](pti_net::NetMetrics::batch_splits)).
    /// Links to departed peers are pruned (their frames dropped) instead
    /// of failing the flush.
    pub fn flush_wire(&mut self) {
        self.service_delivery();
        if self.wire.is_empty() {
            return;
        }
        let wire = std::mem::take(&mut self.wire);
        for ((from, to), frames) in wire {
            // Chunk the burst: a chunk closes when one more frame would
            // exceed either cap (but always holds at least one frame).
            let mut chunks: Vec<Vec<QueuedFrame>> = Vec::new();
            let mut chunk: Vec<QueuedFrame> = Vec::new();
            let mut chunk_bytes = 0usize;
            for frame in frames {
                let over = chunk.len() >= self.wire_max_frames
                    || chunk_bytes + frame.1.len() > self.wire_max_bytes;
                if !chunk.is_empty() && over {
                    chunks.push(std::mem::take(&mut chunk));
                    chunk_bytes = 0;
                }
                chunk_bytes += frame.1.len();
                chunk.push(frame);
            }
            chunks.push(chunk);
            let mut shipped = 0u64;
            for mut chunk in chunks {
                // Frame metadata survives the move into the batch so a
                // *successful* send can attribute the coalesced bytes to
                // their protocol kinds (experiments split OBJECT from
                // control traffic on the batched path). A failed send
                // records nothing, matching the standalone path.
                let mut batched: Vec<(&'static str, usize)> = Vec::new();
                let sent = if chunk.len() == 1 {
                    // pti-allow(panic-policy): len()==1 was just checked on this chunk
                    let (kind, payload) = chunk.pop().expect("one frame");
                    self.net.send(from, to, kind, payload)
                } else {
                    let mut batch = FrameBatch::new();
                    batched.reserve(chunk.len());
                    for (kind, payload) in chunk {
                        batched.push((kind, payload.len()));
                        batch.push(kind, payload);
                    }
                    self.net.send(from, to, kinds::BATCH, batch.encode().into())
                };
                match sent {
                    Ok(()) => {
                        shipped += 1;
                        for (kind, bytes) in batched {
                            self.net.record_batched_frame(kind, bytes);
                        }
                    }
                    Err(NetError::UnknownPeer(p)) => {
                        self.forget_peer(p);
                        break;
                    }
                }
            }
            if shipped > 1 {
                self.net.record_batch_splits(from, to, shipped - 1);
            }
        }
    }

    /// Fires every due retransmit timer against the fabric clock:
    /// overdue reliable links re-queue their in-flight window
    /// (Go-Back-N), and links past the retry budget surface
    /// [`TransportError::Unreachable`] through
    /// [`take_dispatch_errors`](Self::take_dispatch_errors) instead of
    /// hanging, with the dead peer retired from routing.
    fn service_delivery(&mut self) {
        if !self.delivery.has_unsettled() {
            return;
        }
        let out = self.delivery.poll(self.net.now_us());
        for (from, to, frame) in out.retransmits {
            self.queue_frame(from, to, kinds::OBJECT_R, frame);
        }
        for (from, to) in out.unreachable {
            // pti-allow(unbounded-queue): drained by take_dispatch_errors; at most one entry per shed link
            self.dispatch_errors
                .push((from, TransportError::Unreachable(to)));
            if !self.peers.contains_key(&to) {
                self.forget_peer(to);
            }
        }
    }

    /// Sends an object with the eager baseline: descriptions + code of
    /// every involved assembly travel inline with the object.
    ///
    /// # Errors
    /// Same conditions as [`send_object`](Self::send_object).
    pub fn send_object_eager(
        &mut self,
        from: PeerId,
        to: PeerId,
        root: &Value,
        format: PayloadFormat,
    ) -> Result<()> {
        let sender = self
            .peers
            .get(&from)
            .ok_or(TransportError::UnknownPeer(from))?;
        let envelope = sender.make_envelope(root, format)?;
        // Inline weight: every description document + every assembly.
        let mut extra = 0usize;
        for aref in &envelope.assemblies {
            let published = sender
                .published_by_asm_path(&aref.assembly_path)
                .ok_or_else(|| TransportError::UnknownPath(aref.assembly_path.clone()))?;
            extra +=
                descriptions_document(&published.descriptions, &aref.description_path).wire_size();
            extra += published.assembly.byte_size();
        }
        // Length-prefixed framing: the envelope may be binary (any byte
        // value), so a sentinel separator cannot delimit it. An eager
        // envelope is a payload encode like any other (the counter means
        // "one per published envelope", whichever protocol ships it).
        self.net.record_payload_encode();
        let env_bytes = envelope.encode_wire(self.wire_format);
        let mut payload = Vec::with_capacity(4 + env_bytes.len() + extra);
        payload.extend_from_slice(&(env_bytes.len() as u32).to_le_bytes());
        payload.extend_from_slice(&env_bytes);
        payload.extend(std::iter::repeat_n(0u8, extra));
        self.net
            .send(from, to, kinds::EAGER_OBJECT, payload.into())?;
        Ok(())
    }

    /// Runs the protocol until the fabric has nothing queued for this
    /// swarm's peers: delivers every message, advancing pending exchanges
    /// through their description / conformance / code stages.
    ///
    /// On a live fabric "nothing queued" is a transient condition — use
    /// [`run_for`](Self::run_for) there to keep serving until an idle
    /// period passes.
    ///
    /// Per-message failures — malformed frames, unknown kinds, runtime
    /// errors inside one exchange — are *isolated*: the offending
    /// message is recorded in
    /// [`take_dispatch_errors`](Self::take_dispatch_errors) and the
    /// pump keeps serving, so one hostile frame cannot wedge a healthy
    /// swarm. Only engine-level failures (budget exhaustion) abort.
    ///
    /// # Errors
    /// Budget exhaustion — the hard bound converting livelock bugs into
    /// errors.
    pub fn run(&mut self) -> Result<()> {
        loop {
            self.flush_wire();
            let Some((at, msg)) = self.poll_message()? else {
                return Ok(());
            };
            if let Err(e) = self.dispatch_required(at, msg) {
                // pti-allow(unbounded-queue): drained by take_dispatch_errors; growth is bounded by messages handled this pump
                self.dispatch_errors.push((at, e));
            }
        }
    }

    /// Runs the protocol to quiescence *and through every pending
    /// retransmit*: when [`run`](Self::run) drains the fabric but
    /// reliable links still await ACKs, the virtual clock is advanced to
    /// the next retransmit deadline and the pump resumes — the way a
    /// lossy [`SimNet`](pti_net::SimNet) workload reaches 100% delivery
    /// without wall-clock sleeps. Returns once every link is settled or
    /// shed (unreachable peers surface through
    /// [`take_dispatch_errors`](Self::take_dispatch_errors)); on a
    /// wall-clock fabric (which cannot jump time) it behaves like
    /// [`run`](Self::run).
    ///
    /// # Errors
    /// Budget exhaustion.
    pub fn run_durable(&mut self) -> Result<()> {
        loop {
            self.run()?;
            let Some(deadline) = self.delivery.next_deadline_us() else {
                return Ok(());
            };
            if !self.net.advance_virtual_time(deadline) {
                return Ok(());
            }
        }
    }

    /// Runs the protocol until no message has arrived for `idle` — the
    /// live-fabric counterpart of [`run`](Self::run), where concurrent
    /// senders may take real time to produce the next message.
    ///
    /// # Errors
    /// Same conditions as [`run`](Self::run) — per-message failures are
    /// isolated into [`take_dispatch_errors`](Self::take_dispatch_errors).
    pub fn run_for(&mut self, idle: Duration) -> Result<()> {
        loop {
            self.flush_wire();
            let Some((at, msg)) = self.poll_deadline(Instant::now() + idle)? else {
                return Ok(());
            };
            if let Err(e) = self.dispatch_required(at, msg) {
                // pti-allow(unbounded-queue): drained by take_dispatch_errors; growth is bounded by messages handled this pump
                self.dispatch_errors.push((at, e));
            }
        }
    }

    /// Pumps at most `max` pending messages through the protocol, then
    /// returns how many were handled — the cooperative-scheduling
    /// primitive: a [`ReactorHost`](crate::reactor_host::ReactorHost)
    /// calls this with its fairness budget so no busy swarm can starve
    /// its neighbours, where [`run`](Self::run) would drain to
    /// quiescence in one go. Queued wire frames are flushed first so
    /// responses produced by a previous pump reach the fabric.
    ///
    /// # Errors
    /// Same conditions as [`run`](Self::run) — per-message failures are
    /// isolated into [`take_dispatch_errors`](Self::take_dispatch_errors).
    pub fn pump(&mut self, max: usize) -> Result<usize> {
        let mut handled = 0;
        while handled < max {
            self.flush_wire();
            let Some((at, msg)) = self.poll_message()? else {
                break;
            };
            if let Err(e) = self.dispatch_required(at, msg) {
                // pti-allow(unbounded-queue): drained by take_dispatch_errors; growth is bounded by messages handled this pump
                self.dispatch_errors.push((at, e));
            }
            handled += 1;
        }
        self.flush_wire();
        Ok(handled)
    }

    fn dispatch_required(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        if !kinds::is_protocol(msg.kind) {
            return Err(TransportError::Protocol(format!(
                "unknown message kind `{}`",
                msg.kind
            )));
        }
        self.dispatch(at, msg)?;
        Ok(())
    }

    /// Pops the next deliverable message from any owned peer's inbox
    /// (advancing the virtual clock on a [`SimNet`]). `None` when nothing
    /// is queued right now.
    ///
    /// # Errors
    /// Budget exhaustion — a hard bound converting livelock bugs into
    /// errors.
    pub fn poll_message(&mut self) -> Result<Option<(PeerId, BusMessage)>> {
        self.check_budget()?;
        let ids: Vec<PeerId> = self.peers.keys().copied().collect();
        for id in ids {
            if let Some(msg) = self.net.try_recv(id) {
                self.budget -= 1;
                return Ok(Some((id, msg)));
            }
        }
        Ok(None)
    }

    /// Like [`poll_message`](Self::poll_message), but waits until
    /// `deadline` for a message to arrive — the polling primitive for
    /// concurrent fabrics.
    ///
    /// # Errors
    /// Budget exhaustion.
    pub fn poll_deadline(&mut self, deadline: Instant) -> Result<Option<(PeerId, BusMessage)>> {
        self.check_budget()?;
        let ids: Vec<PeerId> = self.peers.keys().copied().collect();
        match self.net.recv_deadline(&ids, deadline) {
            Some(m) => {
                self.budget -= 1;
                Ok(Some((m.to, m)))
            }
            None => Ok(None),
        }
    }

    /// Replaces the message budget — the hard bound that converts
    /// livelock bugs into errors. The default (1,000,000 messages) suits
    /// finite experiments; long-lived serving loops should raise or
    /// periodically reset it.
    pub fn set_message_budget(&mut self, budget: usize) {
        self.budget = budget;
    }

    /// Budget charged only for *delivered* messages (idle polls are
    /// free), checked *before* popping so a budget of N delivers exactly
    /// N messages and the N+1th is left on the transport.
    fn check_budget(&self) -> Result<()> {
        if self.budget == 0 {
            return Err(TransportError::Protocol(
                "message budget exhausted (livelock?)".into(),
            ));
        }
        Ok(())
    }

    /// Sends a raw message on behalf of a peer — the hook higher-level
    /// protocols (remoting) use to add their own message kinds.
    ///
    /// # Errors
    /// Unknown destination.
    pub fn send_raw(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: &'static str,
        payload: impl Into<Payload>,
    ) -> Result<()> {
        self.net.send(from, to, kind, payload.into())?;
        Ok(())
    }

    /// Handles one message of the *transport* protocol. Returns `false`
    /// (without consuming side effects) for unknown kinds so embedding
    /// protocols can claim them.
    ///
    /// Any frames the message provoked — desc/asm responses, membership
    /// view transfers — are queued per link and flushed before this
    /// returns, so a batch of requests answers as a batch of responses
    /// and manual drivers (`poll_message` + `dispatch` loops) never
    /// strand replies in the queue.
    ///
    /// # Errors
    /// Protocol violations or runtime failures.
    pub fn dispatch(&mut self, at: PeerId, msg: BusMessage) -> Result<bool> {
        let handled = self.dispatch_inner(at, msg)?;
        self.flush_wire();
        Ok(handled)
    }

    /// [`dispatch`](Self::dispatch) minus the trailing flush — what
    /// batch unpacking recurses through, so every frame of an inbound
    /// batch contributes to one coalesced response flush.
    fn dispatch_inner(&mut self, at: PeerId, msg: BusMessage) -> Result<bool> {
        match msg.kind {
            kinds::OBJECT => self.on_object(at, msg)?,
            kinds::DESC_REQUEST => self.on_desc_request(at, msg)?,
            kinds::DESC_RESPONSE => self.on_desc_response(at, msg)?,
            kinds::ASM_REQUEST => self.on_asm_request(at, msg)?,
            kinds::ASM_RESPONSE => self.on_asm_response(at, msg)?,
            kinds::EAGER_OBJECT => self.on_eager_object(at, msg)?,
            kinds::SUBSCRIBE => self.on_subscribe(at, msg)?,
            kinds::UNSUBSCRIBE => self.on_unsubscribe(at, msg)?,
            kinds::JOIN => self.on_join(at, msg)?,
            kinds::LEAVE | kinds::VIEW => self.on_view_update(at, msg)?,
            kinds::OBJECT_R => self.on_object_r(at, msg)?,
            kinds::ACK => self.on_ack_frame(at, msg)?,
            kinds::BATCH => self.on_batch(at, msg)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Splits a coalesced wire batch back into its frames and dispatches
    /// each in queue order.
    fn on_batch(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        // Interned decode: every kind tag comes back as the receiver's
        // `&'static str` constant — no per-frame String allocation —
        // and an unknown kind fails the batch like it always did.
        let batch = FrameBatch::decode_interned(&msg.payload, kinds::intern)
            .map_err(|e| TransportError::Protocol(e.to_string()))?;
        for frame in batch.frames {
            // decode_interned yields borrowed protocol constants; the
            // defensive arm keeps a future divergence a protocol error,
            // not a panic, without rescanning the kind table.
            let std::borrow::Cow::Borrowed(kind) = frame.kind else {
                return Err(TransportError::Protocol(
                    "batch decode yielded an uninterned kind".into(),
                ));
            };
            self.dispatch_inner(
                at,
                BusMessage {
                    from: msg.from,
                    to: at,
                    kind,
                    payload: frame.payload,
                },
            )?;
        }
        Ok(())
    }

    /// Learns a remote subscription: `msg.from` declared an interest. An
    /// empty signature is ignored rather than rejected — one peer's
    /// unroutable type name must not poison the receiving swarm's pump.
    fn on_subscribe(&mut self, _at: PeerId, msg: BusMessage) -> Result<()> {
        let (guid, signature) = parse_interest_gossip(&msg.payload)?;
        if let Some(signature) = signature {
            self.routes.insert(msg.from, guid, signature);
        }
        Ok(())
    }

    /// Learns a remote retraction: `msg.from` withdrew an interest.
    fn on_unsubscribe(&mut self, _at: PeerId, msg: BusMessage) -> Result<()> {
        let (guid, _) = parse_interest_gossip(&msg.payload)?;
        self.routes.remove(msg.from, guid);
        Ok(())
    }

    fn on_object(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        self.on_object_bytes(at, msg.from, &msg.payload)
    }

    /// Handles one inbound reliable object frame: the engine adjudicates
    /// the link sequence (accept / duplicate / gap), a cumulative ACK
    /// rides the wire queue back, and only in-order novel events reach
    /// the typed exchange — so retransmits and replays never
    /// double-deliver.
    fn on_object_r(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        if !self.peers.contains_key(&at) {
            return Err(TransportError::UnknownPeer(at));
        }
        let (verdict, ack) = self.delivery.on_object_r(at, msg.from, &msg.payload);
        if let Some(ack) = ack {
            self.queue_frame(at, msg.from, kinds::ACK, ack);
        }
        match verdict {
            Inbound::Deliver { .. } => {
                self.on_object_bytes(at, msg.from, &msg.payload[RELIABLE_HEADER_LEN..])
            }
            Inbound::Malformed => Err(TransportError::Protocol(
                "reliable object frame shorter than its header".into(),
            )),
            Inbound::Suppressed | Inbound::LinkDuplicate | Inbound::GapDiscard => Ok(()),
        }
    }

    /// Handles one cumulative ACK: settled frames leave the in-flight
    /// window and any events the replenished credit admits are framed
    /// and queued.
    fn on_ack_frame(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        let now = self.net.now_us();
        let refilled = self
            .delivery
            .on_ack(at, msg.from, &msg.payload, now)
            .ok_or_else(|| TransportError::Protocol("malformed ack payload".into()))?;
        for frame in refilled {
            self.queue_frame(at, msg.from, kinds::OBJECT_R, frame);
        }
        Ok(())
    }

    /// The shared tail of [`on_object`](Self::on_object) and the
    /// reliable path: decode the envelope bytes and open a pending
    /// exchange at the receiving peer.
    fn on_object_bytes(&mut self, at: PeerId, from: PeerId, bytes: &[u8]) -> Result<()> {
        let envelope = decode_envelope(bytes)?;
        let peer = self
            .peers
            .get_mut(&at)
            .ok_or(TransportError::UnknownPeer(at))?;
        peer.stats.objects_received += 1;
        peer.next_seq += 1;
        let seq = peer.next_seq;
        let pending = PendingObject {
            seq,
            from,
            envelope,
            awaiting_descs: HashSet::new(),
            awaiting_asms: None,
            matched: None,
        };
        peer.pending.push(pending);
        self.advance(at, seq)
    }

    /// Index of a pending exchange by its sequence number (pendings move
    /// as others complete, so stable seqs are the only safe key).
    fn pending_idx(&self, at: PeerId, seq: u64) -> Option<usize> {
        self.peers
            .get(&at)?
            .pending
            .iter()
            .position(|p| p.seq == seq)
    }

    /// Pushes one pending exchange as far as it can go without more
    /// network input; issues requests when blocked.
    fn advance(&mut self, at: PeerId, seq: u64) -> Result<()> {
        let Some(idx) = self.pending_idx(at, seq) else {
            return Ok(());
        };
        // Stage 1: root type description (steps 2-3 of Figure 1).
        let (root_known, from, desc_paths): (bool, PeerId, Vec<(String, String)>) = {
            let peer = self
                .peers
                .get_mut(&at)
                .ok_or(TransportError::UnknownPeer(at))?;
            let p = &peer.pending[idx];
            let root_known =
                p.envelope.type_guid.is_nil() || peer.knows_description(p.envelope.type_guid);
            let paths = p
                .envelope
                .assemblies
                .iter()
                .map(|a| (a.description_path.clone(), a.assembly_path.clone()))
                .collect();
            (root_known, p.from, paths)
        };

        if !root_known {
            // Request every listed description not yet requested. A path
            // whose response was already consumed (by an earlier
            // exchange) will never be answered again, so it must not be
            // awaited — only in-flight or fresh requests can unblock us.
            let mut to_request = Vec::new();
            let all_answered = {
                // pti-allow(panic-policy): `at` owns the pending exchange being advanced, so the peer entry exists
                let peer = self.peers.get_mut(&at).expect("checked");
                for (desc_path, _) in &desc_paths {
                    if peer.received_descs.contains(desc_path) {
                        continue;
                    }
                    if peer.requested_descs.insert(desc_path.clone()) {
                        to_request.push(desc_path.clone());
                        peer.stats.desc_requests += 1;
                    }
                    peer.pending[idx].awaiting_descs.insert(desc_path.clone());
                }
                peer.pending[idx].awaiting_descs.is_empty()
            };
            if all_answered {
                // Every listed description arrived earlier and still does
                // not cover the root type: the envelope is unservable.
                // pti-allow(panic-policy): `at` owns the pending exchange being advanced, so the peer entry exists
                let peer = self.peers.get_mut(&at).expect("checked");
                let p = peer.pending.remove(idx);
                return Err(TransportError::Protocol(format!(
                    "no listed assembly describes root type `{}`",
                    p.envelope.type_name
                )));
            }
            for path in to_request {
                // Requests ride the wire queue: an envelope listing
                // several assemblies asks for all of them in one batch
                // (and the server answers with one batch of responses).
                self.queue_frame(at, from, kinds::DESC_REQUEST, path.into_bytes());
            }
            // If nothing was newly requested but we're still waiting, a
            // response is already in flight for another pending object.
            return Ok(());
        }

        // Stage 2: conformance check against interests (step 3).
        let matched_needed = {
            // pti-allow(panic-policy): `at` owns the pending exchange being advanced, so the peer entry exists
            let peer = self.peers.get(&at).expect("checked");
            peer.pending[idx].matched.is_none()
        };
        if matched_needed {
            // pti-allow(panic-policy): `at` owns the pending exchange being advanced, so the peer entry exists
            let peer = self.peers.get_mut(&at).expect("checked");
            let guid = peer.pending[idx].envelope.type_guid;
            if guid.is_nil() {
                // Primitive payloads skip conformance.
            } else {
                let root_desc = peer
                    .description_of(guid)
                    .ok_or_else(|| TransportError::Protocol("description vanished".into()))?;
                // Already-installed types are accepted directly (we have
                // their code; the value is exactly representable).
                let all_installed = peer.pending[idx]
                    .envelope
                    .assemblies
                    .iter()
                    .all(|a| peer.has_assembly(a));
                match peer.match_interest(&root_desc) {
                    Some((interest, _conf)) => {
                        peer.pending[idx].matched = Some(interest);
                    }
                    None if all_installed => {
                        // Known type, no interest: direct acceptance.
                    }
                    None => {
                        // Step 3 failed: reject, never download code.
                        let p = peer.pending.remove(idx);
                        let type_name = p.envelope.type_name.clone();
                        peer.push_delivery(Delivery::Rejected {
                            from: p.from,
                            type_name,
                        });
                        return Ok(());
                    }
                }
            }
        }

        // Stage 3: code download (steps 4-5).
        let missing: Vec<String> = {
            // pti-allow(panic-policy): `at` owns the pending exchange being advanced, so the peer entry exists
            let peer = self.peers.get(&at).expect("checked");
            let p = &peer.pending[idx];
            p.envelope
                .assemblies
                .iter()
                .filter(|a| !peer.has_assembly(a))
                .map(|a| a.assembly_path.clone())
                .collect()
        };
        if !missing.is_empty() {
            let mut to_request = Vec::new();
            {
                // pti-allow(panic-policy): `at` owns the pending exchange being advanced, so the peer entry exists
                let peer = self.peers.get_mut(&at).expect("checked");
                let p = &mut peer.pending[idx];
                if p.awaiting_asms.is_some() {
                    return Ok(()); // this exchange already registered its waits
                }
                p.awaiting_asms = Some(missing.iter().cloned().collect());
                for path in &missing {
                    // One fetch per path peer-wide; concurrent exchanges
                    // for the same type share the in-flight download.
                    if peer.requested_asms.insert(path.clone()) {
                        to_request.push(path.clone());
                        peer.stats.asm_requests += 1;
                    }
                }
            }
            for path in to_request {
                self.queue_frame(at, from, kinds::ASM_REQUEST, path.into_bytes());
            }
            return Ok(());
        }

        // Stage 4: everything present — materialize and deliver.
        self.finalize(at, seq)
    }

    fn finalize(&mut self, at: PeerId, seq: u64) -> Result<()> {
        let Some(idx) = self.pending_idx(at, seq) else {
            return Ok(());
        };
        let peer = self
            .peers
            .get_mut(&at)
            .ok_or(TransportError::UnknownPeer(at))?;
        let p = peer.pending.remove(idx);
        let value = peer.materialize(&p.envelope)?;
        let proxy = match (&p.matched, &value) {
            (Some(interest), Value::Obj(h)) => {
                let root_desc = peer
                    .description_of(p.envelope.type_guid)
                    .ok_or_else(|| TransportError::Protocol("description vanished".into()))?;
                let provider = peer.provider();
                let conf = peer
                    .checker
                    .check(&root_desc, interest, &provider, &provider)
                    .map_err(|nc| TransportError::Protocol(format!("conformance lost: {nc}")))?;
                Some(DynamicProxy::from_conformance(interest, &conf, *h))
            }
            _ => None,
        };
        let interest = p.matched.as_ref().map(|d| d.name.clone());
        let interest_guid = p.matched.as_ref().map(|d| d.guid);
        peer.push_delivery(Delivery::Accepted {
            from: p.from,
            value,
            interest,
            interest_guid,
            proxy,
        });
        Ok(())
    }

    fn on_desc_request(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        let path = std::str::from_utf8(&msg.payload)
            .map_err(|_| TransportError::Protocol("desc path not utf8".into()))?
            .to_string();
        let peer = self.peers.get(&at).ok_or(TransportError::UnknownPeer(at))?;
        let published = peer
            .published_by_desc_path(&path)
            .ok_or_else(|| TransportError::UnknownPath(path.clone()))?;
        let doc = descriptions_document(&published.descriptions, &path);
        // Responses ride the wire queue like everything else: a batch of
        // requests answers as one batched response per link.
        self.queue_frame(
            at,
            msg.from,
            kinds::DESC_RESPONSE,
            doc.to_compact().into_bytes(),
        );
        Ok(())
    }

    fn on_desc_response(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        let text = std::str::from_utf8(&msg.payload)
            .map_err(|_| TransportError::Protocol("desc response not utf8".into()))?;
        let doc = pti_xml::parse(text).map_err(pti_serialize::SerializeError::from)?;
        let path = doc
            .get_attr("path")
            .ok_or_else(|| TransportError::Protocol("desc response missing path".into()))?
            .to_string();
        let peer = self
            .peers
            .get_mut(&at)
            .ok_or(TransportError::UnknownPeer(at))?;
        peer.received_descs.insert(path.clone());
        for child in doc.find_all("typeDescription") {
            peer.cache_description(description_from_xml(child)?);
        }
        // Unblock pendings waiting on this description path, in arrival
        // order (seq order).
        let mut ready = Vec::new();
        for p in peer.pending.iter_mut() {
            if p.awaiting_descs.remove(&path) && p.awaiting_descs.is_empty() {
                ready.push(p.seq);
            }
        }
        ready.sort_unstable();
        for seq in ready {
            self.advance(at, seq)?;
        }
        Ok(())
    }

    fn on_asm_request(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        let path = std::str::from_utf8(&msg.payload)
            .map_err(|_| TransportError::Protocol("asm path not utf8".into()))?
            .to_string();
        let peer = self.peers.get(&at).ok_or(TransportError::UnknownPeer(at))?;
        let published = peer
            .published_by_asm_path(&path)
            .ok_or_else(|| TransportError::UnknownPath(path.clone()))?;
        // Payload: path, newline, zero padding up to the simulated size.
        let size = published.assembly.byte_size();
        let mut payload = path.clone().into_bytes();
        payload.push(b'\n');
        if payload.len() < size {
            payload.resize(size, 0);
        }
        self.queue_frame(at, msg.from, kinds::ASM_RESPONSE, payload);
        Ok(())
    }

    fn on_asm_response(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        let nl = msg
            .payload
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| TransportError::Protocol("asm response missing path".into()))?;
        let path = String::from_utf8(msg.payload[..nl].to_vec())
            .map_err(|_| TransportError::Protocol("asm path not utf8".into()))?;
        // Install the code from the out-of-band registry (the wire bytes
        // were the simulated artifact).
        let assembly = self
            .code
            .get(&path)
            .ok_or_else(|| TransportError::UnknownPath(path.clone()))?;
        let peer = self
            .peers
            .get_mut(&at)
            .ok_or(TransportError::UnknownPeer(at))?;
        assembly.install(&mut peer.runtime)?;
        let hash = assembly.content_hash();
        peer.mark_installed(&path, hash);
        let mut ready = Vec::new();
        for p in peer.pending.iter_mut() {
            if let Some(waiting) = &mut p.awaiting_asms {
                waiting.remove(&path);
                if waiting.is_empty() {
                    ready.push(p.seq);
                }
            }
        }
        ready.sort_unstable();
        for seq in ready {
            self.finalize(at, seq)?;
        }
        Ok(())
    }

    fn on_eager_object(&mut self, at: PeerId, msg: BusMessage) -> Result<()> {
        // Overflow-proof bounds check: compare against the bytes that
        // actually remain after the prefix, never `4 + n` (which a
        // hostile u32 could wrap on 32-bit targets).
        let remaining = msg.payload.len().saturating_sub(4);
        let len = msg
            .payload
            .get(..4)
            // pti-allow(panic-policy): get(..4) returned exactly 4 bytes, so the slice-to-array conversion is infallible
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
            .filter(|&n| n <= remaining)
            .ok_or_else(|| TransportError::Protocol("eager payload missing envelope".into()))?;
        let envelope = decode_envelope(&msg.payload[4..4 + len])?;
        // Code and descriptions came inline: install everything.
        let assemblies: Vec<Assembly> = envelope
            .assemblies
            .iter()
            .map(|a| {
                self.code
                    .get(&a.assembly_path)
                    .ok_or_else(|| TransportError::UnknownPath(a.assembly_path.clone()))
            })
            .collect::<Result<_>>()?;
        let peer = self
            .peers
            .get_mut(&at)
            .ok_or(TransportError::UnknownPeer(at))?;
        peer.stats.objects_received += 1;
        for (aref, asm) in envelope.assemblies.iter().zip(assemblies) {
            asm.install(&mut peer.runtime)?;
            let hash = asm.content_hash();
            peer.mark_installed(&aref.assembly_path, hash);
            for d in asm.types() {
                peer.cache_description(pti_metamodel::TypeDescription::from_def(d));
            }
        }
        let value = peer.materialize(&envelope)?;
        let matched = if envelope.type_guid.is_nil() {
            None
        } else {
            let desc = peer
                .description_of(envelope.type_guid)
                .ok_or_else(|| TransportError::Protocol("description missing".into()))?;
            peer.match_interest(&desc)
        };
        let proxy = match (&matched, &value) {
            (Some((interest, conf)), Value::Obj(h)) => {
                Some(DynamicProxy::from_conformance(interest, conf, *h))
            }
            _ => None,
        };
        let interest_guid = matched.as_ref().map(|(d, _)| d.guid);
        let interest = matched.map(|(d, _)| d.name.clone());
        peer.push_delivery(Delivery::Accepted {
            from: msg.from,
            value,
            interest,
            interest_guid,
            proxy,
        });
        Ok(())
    }
}

/// Decodes an object envelope off the wire: binary (`PTIE` magic) or
/// the XML fallback/cross-language form — senders pick, receivers sniff.
///
/// Deliberately *not* `ObjectEnvelope::decode_wire`: the protocol layer
/// classifies a non-utf8 non-binary payload as a `Protocol` error (the
/// error kind `tests/failure_injection.rs` pins), where the library
/// decoder reports a `Serialize` malformation.
fn decode_envelope(payload: &[u8]) -> Result<ObjectEnvelope> {
    if ObjectEnvelope::is_ptib(payload) {
        return Ok(ObjectEnvelope::from_ptib(payload)?);
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| TransportError::Protocol("object payload not utf8".into()))?;
    Ok(ObjectEnvelope::from_string(text)?)
}

/// Parses `subscribe`/`unsubscribe` gossip payloads: a GUID line,
/// optionally followed by a signature-token line (`subscribe` only).
fn parse_interest_gossip(payload: &[u8]) -> Result<(Guid, Option<Signature>)> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| TransportError::Protocol("interest gossip not utf8".into()))?;
    let mut lines = text.splitn(2, '\n');
    let guid: Guid = lines
        .next()
        .unwrap_or_default()
        .trim()
        .parse()
        .map_err(|_| TransportError::Protocol("interest gossip has malformed guid".into()))?;
    let signature = lines
        .next()
        .map(Signature::decode)
        .filter(|s| s.is_catch_all() || !s.tokens().is_empty());
    Ok((guid, signature))
}

/// The XML document shipped as a `desc-response`: all descriptions of an
/// assembly under one root tagged with the requested path.
fn descriptions_document(descs: &[pti_metamodel::TypeDescription], path: &str) -> Element {
    let mut doc = Element::new("descriptions").attr("path", path);
    for d in descs {
        doc.push_child(description_to_xml(d));
    }
    doc
}
