//! Interest-indexed routing: who wants events of which type?
//!
//! Gryphon/SIENA-style event systems route by *content descriptors*
//! instead of broadcasting; the TPS analogue of a descriptor is the
//! *type-name token signature* — the camel/snake-case tokens of a type's
//! simple name. A subscriber's interest (`StockQuote`) and a publisher's
//! event type (`StockQuote`, `stock_quote`, `StockQuoteV2`…) match when
//! one's token sequence is an ordered subsequence of the other's — the
//! same relaxation [`NameMatcher::TokenSubsequence`] applies to member
//! names, and a strict superset of the `Exact` type-name matching both
//! conformance profiles use. The signature is therefore a *conservative
//! pre-filter*: it may route an event the receiver's conformance check
//! then rejects, but it never starves a subscriber whose interest name
//! matches under the default profiles.
//!
//! The [`RoutingTable`] is replicated per protocol engine: each
//! [`Swarm`](crate::Swarm) applies local subscriptions directly and
//! learns remote ones from `subscribe`/`unsubscribe` gossip messages, so
//! every engine resolves the same subscriber set for a given event type
//! — the decision parity `transport_parity.rs` asserts across fabrics.
//!
//! [`NameMatcher::TokenSubsequence`]: pti_conformance::NameMatcher

use std::collections::{BTreeMap, BTreeSet, HashMap};

use pti_metamodel::{split_ident_tokens, Guid, TypeDescription};
use pti_net::PeerId;

/// The token signature of a type name: lowercased identifier tokens of
/// the *simple* name (`finance.StockQuote` → `["stock", "quote"]`) —
/// or the *catch-all* signature, which matches every event. Catch-all
/// entries exist for interests whose conformance profile uses a
/// type-name matcher the token prefilter cannot model (Levenshtein,
/// wildcards, synonyms): such subscribers receive everything and filter
/// locally, preserving flood semantics for them while the rest of the
/// group enjoys indexed routing.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    tokens: Vec<String>,
    catch_all: bool,
}

impl Signature {
    /// Signature of a bare type name.
    pub fn of_name(name: &str) -> Signature {
        let simple = name.rsplit('.').next().unwrap_or(name);
        Signature {
            tokens: split_ident_tokens(simple),
            catch_all: false,
        }
    }

    /// Signature of a type description (its name's simple part).
    pub fn of_description(desc: &TypeDescription) -> Signature {
        Signature::of_name(desc.name.simple())
    }

    /// The signature that matches every event.
    pub fn catch_all() -> Signature {
        Signature {
            tokens: Vec::new(),
            catch_all: true,
        }
    }

    /// Whether this is the catch-all signature.
    pub fn is_catch_all(&self) -> bool {
        self.catch_all
    }

    /// The tokens (empty for the catch-all signature).
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Whether an event with this signature should be routed to an
    /// interest with signature `interest`: always for a catch-all
    /// interest; otherwise equal token sequences, or either sequence an
    /// ordered subsequence of the other (`setName` ≈ `setPersonName`,
    /// both directions — subscribers may name their interest more or
    /// less specifically than the publisher).
    pub fn matches(&self, interest: &Signature) -> bool {
        interest.catch_all
            || self.tokens == interest.tokens
            || subsequence(&self.tokens, &interest.tokens)
            || subsequence(&interest.tokens, &self.tokens)
    }

    /// Wire form: tokens joined by spaces; `*` for the catch-all.
    pub fn encode(&self) -> String {
        if self.catch_all {
            "*".to_string()
        } else {
            self.tokens.join(" ")
        }
    }

    /// Parses the wire form produced by [`encode`](Self::encode).
    pub fn decode(text: &str) -> Signature {
        if text.trim() == "*" {
            return Signature::catch_all();
        }
        Signature {
            tokens: text.split_whitespace().map(str::to_string).collect(),
            catch_all: false,
        }
    }
}

/// Ordered containment of `needle` in `hay` (both non-empty).
fn subsequence(needle: &[String], hay: &[String]) -> bool {
    if needle.is_empty() {
        return false;
    }
    let mut it = hay.iter();
    needle.iter().all(|t| it.any(|x| x == t))
}

/// The interest index a protocol engine routes by.
///
/// Keyed by `(subscriber, interest identity)` so the same peer may hold
/// several interests (even same-named ones from different vendors) and
/// retract each independently. A token inverted index keeps
/// [`resolve`](Self::resolve) proportional to the *candidate* interests
/// (those sharing a token with the event) rather than every interest in
/// the group — the publish hot path must not scan all subscribers.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    entries: BTreeMap<(PeerId, Guid), Signature>,
    /// token → interests whose signature contains it. A match in either
    /// subsequence direction shares at least one token with the event,
    /// so the union over the event's tokens is a complete candidate set.
    by_token: HashMap<String, BTreeSet<(PeerId, Guid)>>,
    /// Catch-all interests: candidates for every event.
    catch_all: BTreeSet<(PeerId, Guid)>,
}

impl PartialEq for RoutingTable {
    fn eq(&self, other: &RoutingTable) -> bool {
        self.entries == other.entries
    }
}

impl Eq for RoutingTable {}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> RoutingTable {
        RoutingTable::default()
    }

    /// Registers an interest. Returns `false` if the identical entry was
    /// already present (gossip is at-least-once; inserts are idempotent).
    pub fn insert(&mut self, subscriber: PeerId, interest: Guid, signature: Signature) -> bool {
        let key = (subscriber, interest);
        let fresh = match self.entries.insert(key, signature.clone()) {
            None => true,
            Some(old) => {
                self.unindex(key, &old);
                false
            }
        };
        if signature.is_catch_all() {
            self.catch_all.insert(key);
        }
        for t in signature.tokens() {
            self.by_token.entry(t.clone()).or_default().insert(key);
        }
        fresh
    }

    fn unindex(&mut self, key: (PeerId, Guid), signature: &Signature) {
        self.catch_all.remove(&key);
        for t in signature.tokens() {
            if let Some(set) = self.by_token.get_mut(t) {
                set.remove(&key);
                if set.is_empty() {
                    self.by_token.remove(t);
                }
            }
        }
    }

    /// Retracts one interest of one subscriber. Returns whether anything
    /// was removed.
    pub fn remove(&mut self, subscriber: PeerId, interest: Guid) -> bool {
        let key = (subscriber, interest);
        let Some(signature) = self.entries.remove(&key) else {
            return false;
        };
        self.unindex(key, &signature);
        true
    }

    /// Drops every interest of a departed peer.
    pub fn remove_peer(&mut self, subscriber: PeerId) {
        let keys: Vec<(PeerId, Guid)> = self
            .entries
            .range((subscriber, Guid(0))..=(subscriber, Guid(u128::MAX)))
            .map(|(k, _)| *k)
            .collect();
        for (p, g) in keys {
            self.remove(p, g);
        }
    }

    /// The peers whose interests match an event signature, deduplicated
    /// and in ascending id order (deterministic fan-out on every fabric).
    pub fn resolve(&self, event: &Signature) -> Vec<PeerId> {
        // Candidates: every catch-all interest, plus every interest
        // sharing at least one token with the event (a necessary
        // condition for matching in either direction).
        let mut candidates: BTreeSet<(PeerId, Guid)> = self.catch_all.clone();
        for t in event.tokens() {
            if let Some(set) = self.by_token.get(t) {
                candidates.extend(set.iter().copied());
            }
        }
        let mut out: Vec<PeerId> = Vec::new();
        for key @ (peer, _) in candidates {
            if out.last() == Some(&peer) {
                continue;
            }
            if event.matches(&self.entries[&key]) {
                out.push(peer);
            }
        }
        out
    }

    /// Number of registered interests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no interest is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every registered interest: `(subscriber, interest identity,
    /// signature)` in key order — what a membership VIEW re-announces to
    /// a late joiner so it converges to the same table.
    pub fn entries(&self) -> impl Iterator<Item = (PeerId, Guid, &Signature)> {
        self.entries.iter().map(|(&(p, g), s)| (p, g, s))
    }

    /// Peers holding at least one interest.
    pub fn subscribers(&self) -> Vec<PeerId> {
        let mut out: Vec<PeerId> = Vec::new();
        for (peer, _) in self.entries.keys() {
            if out.last() != Some(peer) {
                out.push(*peer);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::{primitives, TypeDef};

    fn sig(name: &str) -> Signature {
        Signature::of_name(name)
    }

    #[test]
    fn signature_tokens_and_namespaces() {
        assert_eq!(sig("StockQuote").tokens(), ["stock", "quote"]);
        assert_eq!(sig("finance.StockQuote").tokens(), ["stock", "quote"]);
        assert_eq!(sig("stock_quote").tokens(), ["stock", "quote"]);
    }

    #[test]
    fn signature_matching_is_subsequence_both_ways() {
        assert!(sig("StockQuote").matches(&sig("stockQuote")));
        assert!(sig("StockQuoteV2").matches(&sig("StockQuote")));
        assert!(sig("Quote").matches(&sig("StockQuote")), "less specific");
        assert!(!sig("NewsFlash").matches(&sig("StockQuote")));
        assert!(!sig("QuoteStock").matches(&sig("StockQuote")), "ordered");
    }

    #[test]
    fn signature_wire_roundtrip() {
        let s = sig("SensorReading");
        assert_eq!(Signature::decode(&s.encode()), s);
        assert!(Signature::decode("").tokens().is_empty());
        assert!(Signature::decode("*").is_catch_all());
        assert_eq!(
            Signature::decode(&Signature::catch_all().encode()),
            Signature::catch_all()
        );
    }

    #[test]
    fn of_description_uses_simple_name() {
        let def = TypeDef::class("StockQuote", "v")
            .field("price", primitives::FLOAT64)
            .build();
        let d = TypeDescription::from_def(&def);
        assert_eq!(Signature::of_description(&d), sig("StockQuote"));
    }

    #[test]
    fn table_resolves_matching_subscribers_in_order() {
        let mut t = RoutingTable::new();
        let (ga, gb, gc) = (
            Guid::derive("A", "x"),
            Guid::derive("B", "x"),
            Guid::derive("C", "x"),
        );
        t.insert(PeerId(3), ga, sig("StockQuote"));
        t.insert(PeerId(1), gb, sig("StockQuote"));
        t.insert(PeerId(2), gc, sig("NewsFlash"));
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(1), PeerId(3)]);
        assert_eq!(t.resolve(&sig("NewsFlash")), vec![PeerId(2)]);
        assert!(t.resolve(&sig("Unrelated")).is_empty());
    }

    #[test]
    fn duplicate_interests_resolve_once() {
        let mut t = RoutingTable::new();
        let (ga, gb) = (Guid::derive("A", "x"), Guid::derive("A", "y"));
        assert!(t.insert(PeerId(1), ga, sig("StockQuote")));
        assert!(!t.insert(PeerId(1), ga, sig("StockQuote")), "idempotent");
        t.insert(PeerId(1), gb, sig("StockQuote"));
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(1)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn catch_all_interests_resolve_for_every_event() {
        let mut t = RoutingTable::new();
        let (ga, gb) = (Guid::derive("A", "x"), Guid::derive("B", "x"));
        t.insert(PeerId(1), ga, sig("StockQuote"));
        t.insert(PeerId(2), gb, Signature::catch_all());
        assert!(sig("Anything").matches(&Signature::catch_all()));
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(1), PeerId(2)]);
        assert_eq!(t.resolve(&sig("Unrelated")), vec![PeerId(2)]);
        // Retraction drops it from the every-event candidate set too.
        assert!(t.remove(PeerId(2), gb));
        assert!(t.resolve(&sig("Unrelated")).is_empty());
    }

    #[test]
    fn removal_by_identity_and_by_peer() {
        let mut t = RoutingTable::new();
        let (ga, gb) = (Guid::derive("A", "x"), Guid::derive("A", "y"));
        t.insert(PeerId(1), ga, sig("StockQuote"));
        t.insert(PeerId(1), gb, sig("StockQuote"));
        t.insert(PeerId(2), ga, sig("StockQuote"));
        assert!(t.remove(PeerId(1), ga));
        assert!(!t.remove(PeerId(1), ga), "already gone");
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(1), PeerId(2)]);
        t.remove_peer(PeerId(1));
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(2)]);
        assert_eq!(t.subscribers(), vec![PeerId(2)]);
        assert!(!t.is_empty());
    }
}
