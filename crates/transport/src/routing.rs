//! Interest-indexed routing: who wants events of which type?
//!
//! Gryphon/SIENA-style event systems route by *content descriptors*
//! instead of broadcasting; the TPS analogue of a descriptor is the
//! *type-name token signature* — the camel/snake-case tokens of a type's
//! simple name. A subscriber's interest (`StockQuote`) and a publisher's
//! event type (`StockQuote`, `stock_quote`, `StockQuoteV2`…) match when
//! one's token sequence is an ordered subsequence of the other's — the
//! same relaxation [`NameMatcher::TokenSubsequence`] applies to member
//! names, and a strict superset of the `Exact` type-name matching both
//! conformance profiles use. The signature is therefore a *conservative
//! pre-filter*: it may route an event the receiver's conformance check
//! then rejects, but it never starves a subscriber whose interest name
//! matches under the default profiles.
//!
//! The [`RoutingTable`] is replicated per protocol engine: each
//! [`Swarm`](crate::Swarm) applies local subscriptions directly and
//! learns remote ones from `subscribe`/`unsubscribe` gossip messages, so
//! every engine resolves the same subscriber set for a given event type
//! — the decision parity `transport_parity.rs` asserts across fabrics.
//!
//! [`NameMatcher::TokenSubsequence`]: pti_conformance::NameMatcher

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use pti_metamodel::{split_ident_tokens, Guid, TypeDescription};
use pti_net::PeerId;

/// The token signature of a type name: lowercased identifier tokens of
/// the *simple* name (`finance.StockQuote` → `["stock", "quote"]`) —
/// or the *catch-all* signature, which matches every event. Catch-all
/// entries exist for interests whose conformance profile uses a
/// type-name matcher the token prefilter cannot model (Levenshtein,
/// wildcards, synonyms): such subscribers receive everything and filter
/// locally, preserving flood semantics for them while the rest of the
/// group enjoys indexed routing.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    tokens: Vec<String>,
    catch_all: bool,
}

impl Signature {
    /// Signature of a bare type name.
    pub fn of_name(name: &str) -> Signature {
        let simple = name.rsplit('.').next().unwrap_or(name);
        Signature {
            tokens: split_ident_tokens(simple),
            catch_all: false,
        }
    }

    /// Signature of a type description (its name's simple part).
    pub fn of_description(desc: &TypeDescription) -> Signature {
        Signature::of_name(desc.name.simple())
    }

    /// The signature that matches every event.
    pub fn catch_all() -> Signature {
        Signature {
            tokens: Vec::new(),
            catch_all: true,
        }
    }

    /// Whether this is the catch-all signature.
    pub fn is_catch_all(&self) -> bool {
        self.catch_all
    }

    /// The tokens (empty for the catch-all signature).
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Whether an event with this signature should be routed to an
    /// interest with signature `interest`: always for a catch-all
    /// interest; otherwise equal token sequences, or either sequence an
    /// ordered subsequence of the other (`setName` ≈ `setPersonName`,
    /// both directions — subscribers may name their interest more or
    /// less specifically than the publisher).
    pub fn matches(&self, interest: &Signature) -> bool {
        interest.catch_all
            || self.tokens == interest.tokens
            || subsequence(&self.tokens, &interest.tokens)
            || subsequence(&interest.tokens, &self.tokens)
    }

    /// Wire form: tokens joined by spaces; `*` for the catch-all.
    pub fn encode(&self) -> String {
        if self.catch_all {
            "*".to_string()
        } else {
            self.tokens.join(" ")
        }
    }

    /// Parses the wire form produced by [`encode`](Self::encode).
    pub fn decode(text: &str) -> Signature {
        if text.trim() == "*" {
            return Signature::catch_all();
        }
        Signature {
            tokens: text.split_whitespace().map(str::to_string).collect(),
            catch_all: false,
        }
    }
}

/// Ordered containment of `needle` in `hay` (both non-empty).
fn subsequence(needle: &[String], hay: &[String]) -> bool {
    if needle.is_empty() {
        return false;
    }
    let mut it = hay.iter();
    needle.iter().all(|t| it.any(|x| x == t))
}

/// Interns signature tokens to `u32` ids, so the inverted index hashes
/// small integers instead of strings and an event token unknown to
/// every interest is recognized (and skipped) with a single lookup.
///
/// Ids come from a monotonic counter (never reused), so evicting a
/// token whose last interest retracted cannot collide with a live id —
/// the table stays bounded by the *current* interests, not by every
/// token ever seen.
#[derive(Debug, Clone, Default)]
struct TokenInterner {
    ids: HashMap<String, u32>,
    next_id: u32,
}

impl TokenInterner {
    /// The id of `token`, minting one on first sight (insert path).
    fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.ids.insert(token.to_string(), id);
        id
    }

    /// The id of `token` if any interest currently uses it (resolve
    /// path — never allocates).
    fn get(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// Drops a token no interest uses anymore (its id retires with it).
    fn evict(&mut self, token: &str) {
        self.ids.remove(token);
    }
}

/// The memoized results of [`RoutingTable::resolve_name`], valid for one
/// table generation.
#[derive(Debug, Clone, Default)]
struct RouteCache {
    generation: u64,
    by_name: HashMap<String, Arc<[PeerId]>>,
}

/// Upper bound on memoized event names. A stable group (generation
/// never moves) publishing many *distinct* type names — or fed
/// attacker-chosen names — must not grow the memo without limit; at the
/// cap the memo resets wholesale and rebuilds from the live working
/// set. Steady-state workloads publish far fewer distinct names.
const ROUTE_CACHE_MAX_NAMES: usize = 1024;

/// The interest index a protocol engine routes by.
///
/// Keyed by `(subscriber, interest identity)` so the same peer may hold
/// several interests (even same-named ones from different vendors) and
/// retract each independently. A token inverted index keeps
/// [`resolve`](Self::resolve) proportional to the *candidate* interests
/// (those sharing a token with the event) rather than every interest in
/// the group — the publish hot path must not scan all subscribers.
///
/// Two further layers keep steady-state publishing cheap: signature
/// tokens are interned to `u32` ids (the index hashes integers, not
/// strings), and [`resolve_name`](Self::resolve_name) memoizes the full
/// resolution per event type name behind a [`generation`] counter bumped
/// on every subscribe/unsubscribe/prune — a publisher that keeps sending
/// the same event types does one name lookup per event, no token
/// splitting and no signature matching.
///
/// [`generation`]: Self::generation
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    entries: BTreeMap<(PeerId, Guid), Signature>,
    /// Token strings interned to the dense ids `by_token` is keyed by.
    interner: TokenInterner,
    /// token id → interests whose signature contains it. A match in
    /// either subsequence direction shares at least one token with the
    /// event, so the union over the event's tokens is a complete
    /// candidate set.
    by_token: HashMap<u32, BTreeSet<(PeerId, Guid)>>,
    /// Catch-all interests: candidates for every event.
    catch_all: BTreeSet<(PeerId, Guid)>,
    /// Bumped on every mutation; invalidates the resolve cache.
    generation: u64,
    /// Per-event-name memo of resolved subscriber sets (interior
    /// mutability: resolving is logically read-only).
    cache: RefCell<RouteCache>,
}

impl PartialEq for RoutingTable {
    fn eq(&self, other: &RoutingTable) -> bool {
        self.entries == other.entries
    }
}

impl Eq for RoutingTable {}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> RoutingTable {
        RoutingTable::default()
    }

    /// The current table generation: bumped whenever a mutation could
    /// change a resolution, so cached routing decisions (here and in
    /// layers above) know when to refresh.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Registers an interest. Returns `false` if the identical entry was
    /// already present (gossip is at-least-once; inserts are idempotent —
    /// and an idempotent re-insert does not invalidate the route cache).
    pub fn insert(&mut self, subscriber: PeerId, interest: Guid, signature: Signature) -> bool {
        let key = (subscriber, interest);
        let fresh = match self.entries.get(&key) {
            // Identical re-announcement (at-least-once gossip): nothing
            // changes, the route cache stays warm.
            Some(old) if *old == signature => return false,
            Some(_) => {
                let old = self
                    .entries
                    .insert(key, signature.clone())
                    // pti-allow(panic-policy): insert over a key that was just looked up returns the old value
                    .expect("present");
                self.unindex(key, &old);
                false
            }
            None => {
                self.entries.insert(key, signature.clone());
                true
            }
        };
        if signature.is_catch_all() {
            self.catch_all.insert(key);
        }
        for t in signature.tokens() {
            let id = self.interner.intern(t);
            self.by_token.entry(id).or_default().insert(key);
        }
        self.generation += 1;
        fresh
    }

    fn unindex(&mut self, key: (PeerId, Guid), signature: &Signature) {
        self.catch_all.remove(&key);
        for t in signature.tokens() {
            let Some(id) = self.interner.get(t) else {
                continue;
            };
            if let Some(set) = self.by_token.get_mut(&id) {
                set.remove(&key);
                if set.is_empty() {
                    // Last interest using the token: index entry and
                    // interned string retire together, keeping a
                    // long-lived table bounded by current interests.
                    self.by_token.remove(&id);
                    self.interner.evict(t);
                }
            }
        }
    }

    /// Retracts one interest of one subscriber. Returns whether anything
    /// was removed.
    pub fn remove(&mut self, subscriber: PeerId, interest: Guid) -> bool {
        let key = (subscriber, interest);
        let Some(signature) = self.entries.remove(&key) else {
            return false;
        };
        self.unindex(key, &signature);
        self.generation += 1;
        true
    }

    /// Drops every interest of a departed peer.
    pub fn remove_peer(&mut self, subscriber: PeerId) {
        let keys: Vec<(PeerId, Guid)> = self
            .entries
            .range((subscriber, Guid(0))..=(subscriber, Guid(u128::MAX)))
            .map(|(k, _)| *k)
            .collect();
        for (p, g) in keys {
            self.remove(p, g);
        }
    }

    /// The peers whose interests match an event signature, deduplicated
    /// and in ascending id order (deterministic fan-out on every fabric).
    pub fn resolve(&self, event: &Signature) -> Vec<PeerId> {
        // Candidates: every catch-all interest, plus every interest
        // sharing at least one token with the event (a necessary
        // condition for matching in either direction). Tokens no
        // interest ever used miss the interner and are skipped outright.
        let mut candidates: BTreeSet<(PeerId, Guid)> = self.catch_all.clone();
        for t in event.tokens() {
            if let Some(set) = self.interner.get(t).and_then(|id| self.by_token.get(&id)) {
                candidates.extend(set.iter().copied());
            }
        }
        let mut out: Vec<PeerId> = Vec::new();
        for key @ (peer, _) in candidates {
            if out.last() == Some(&peer) {
                continue;
            }
            if event.matches(&self.entries[&key]) {
                out.push(peer);
            }
        }
        out
    }

    /// Memoized [`resolve`](Self::resolve) keyed by the event's *type
    /// name* — the publish hot path. The first event of a name pays the
    /// full resolution (token split, index walk, signature matching);
    /// every further event of that name, until the next table mutation,
    /// is one map lookup returning a shared slice. The memo is
    /// invalidated wholesale when [`generation`](Self::generation)
    /// moves.
    pub fn resolve_name(&self, name: &str) -> Arc<[PeerId]> {
        let mut cache = self.cache.borrow_mut();
        if cache.generation != self.generation {
            cache.by_name.clear();
            cache.generation = self.generation;
        }
        if let Some(hit) = cache.by_name.get(name) {
            return Arc::clone(hit);
        }
        if cache.by_name.len() >= ROUTE_CACHE_MAX_NAMES {
            cache.by_name.clear();
        }
        let resolved: Arc<[PeerId]> = self.resolve(&Signature::of_name(name)).into();
        cache
            .by_name
            .insert(name.to_string(), Arc::clone(&resolved));
        resolved
    }

    /// Number of registered interests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of distinct tokens currently interned (bounded by live
    /// interests — churn test hook).
    #[cfg(test)]
    fn interned_tokens(&self) -> usize {
        self.interner.ids.len()
    }

    /// Whether no interest is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every registered interest: `(subscriber, interest identity,
    /// signature)` in key order — what a membership VIEW re-announces to
    /// a late joiner so it converges to the same table.
    pub fn entries(&self) -> impl Iterator<Item = (PeerId, Guid, &Signature)> {
        self.entries.iter().map(|(&(p, g), s)| (p, g, s))
    }

    /// Peers holding at least one interest.
    pub fn subscribers(&self) -> Vec<PeerId> {
        let mut out: Vec<PeerId> = Vec::new();
        for (peer, _) in self.entries.keys() {
            if out.last() != Some(peer) {
                out.push(*peer);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::{primitives, TypeDef};

    fn sig(name: &str) -> Signature {
        Signature::of_name(name)
    }

    #[test]
    fn signature_tokens_and_namespaces() {
        assert_eq!(sig("StockQuote").tokens(), ["stock", "quote"]);
        assert_eq!(sig("finance.StockQuote").tokens(), ["stock", "quote"]);
        assert_eq!(sig("stock_quote").tokens(), ["stock", "quote"]);
    }

    #[test]
    fn signature_matching_is_subsequence_both_ways() {
        assert!(sig("StockQuote").matches(&sig("stockQuote")));
        assert!(sig("StockQuoteV2").matches(&sig("StockQuote")));
        assert!(sig("Quote").matches(&sig("StockQuote")), "less specific");
        assert!(!sig("NewsFlash").matches(&sig("StockQuote")));
        assert!(!sig("QuoteStock").matches(&sig("StockQuote")), "ordered");
    }

    #[test]
    fn signature_wire_roundtrip() {
        let s = sig("SensorReading");
        assert_eq!(Signature::decode(&s.encode()), s);
        assert!(Signature::decode("").tokens().is_empty());
        assert!(Signature::decode("*").is_catch_all());
        assert_eq!(
            Signature::decode(&Signature::catch_all().encode()),
            Signature::catch_all()
        );
    }

    #[test]
    fn of_description_uses_simple_name() {
        let def = TypeDef::class("StockQuote", "v")
            .field("price", primitives::FLOAT64)
            .build();
        let d = TypeDescription::from_def(&def);
        assert_eq!(Signature::of_description(&d), sig("StockQuote"));
    }

    #[test]
    fn table_resolves_matching_subscribers_in_order() {
        let mut t = RoutingTable::new();
        let (ga, gb, gc) = (
            Guid::derive("A", "x"),
            Guid::derive("B", "x"),
            Guid::derive("C", "x"),
        );
        t.insert(PeerId(3), ga, sig("StockQuote"));
        t.insert(PeerId(1), gb, sig("StockQuote"));
        t.insert(PeerId(2), gc, sig("NewsFlash"));
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(1), PeerId(3)]);
        assert_eq!(t.resolve(&sig("NewsFlash")), vec![PeerId(2)]);
        assert!(t.resolve(&sig("Unrelated")).is_empty());
    }

    #[test]
    fn duplicate_interests_resolve_once() {
        let mut t = RoutingTable::new();
        let (ga, gb) = (Guid::derive("A", "x"), Guid::derive("A", "y"));
        assert!(t.insert(PeerId(1), ga, sig("StockQuote")));
        assert!(!t.insert(PeerId(1), ga, sig("StockQuote")), "idempotent");
        t.insert(PeerId(1), gb, sig("StockQuote"));
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(1)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn catch_all_interests_resolve_for_every_event() {
        let mut t = RoutingTable::new();
        let (ga, gb) = (Guid::derive("A", "x"), Guid::derive("B", "x"));
        t.insert(PeerId(1), ga, sig("StockQuote"));
        t.insert(PeerId(2), gb, Signature::catch_all());
        assert!(sig("Anything").matches(&Signature::catch_all()));
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(1), PeerId(2)]);
        assert_eq!(t.resolve(&sig("Unrelated")), vec![PeerId(2)]);
        // Retraction drops it from the every-event candidate set too.
        assert!(t.remove(PeerId(2), gb));
        assert!(t.resolve(&sig("Unrelated")).is_empty());
    }

    #[test]
    fn generation_moves_only_on_real_mutations() {
        let mut t = RoutingTable::new();
        let g = Guid::derive("A", "x");
        let g0 = t.generation();
        t.insert(PeerId(1), g, sig("StockQuote"));
        let g1 = t.generation();
        assert!(g1 > g0, "insert bumps");
        // Idempotent re-announcement (at-least-once gossip) keeps the
        // generation — and therefore the route cache — untouched.
        t.insert(PeerId(1), g, sig("StockQuote"));
        assert_eq!(t.generation(), g1);
        // A changed signature under the same key is a real mutation.
        t.insert(PeerId(1), g, sig("NewsFlash"));
        assert!(t.generation() > g1);
        let g2 = t.generation();
        assert!(!t.remove(PeerId(9), g), "no-op remove");
        assert_eq!(t.generation(), g2);
        assert!(t.remove(PeerId(1), g));
        assert!(t.generation() > g2);
    }

    #[test]
    fn resolve_name_memoizes_until_the_table_changes() {
        let mut t = RoutingTable::new();
        let (ga, gb) = (Guid::derive("A", "x"), Guid::derive("B", "x"));
        t.insert(PeerId(1), ga, sig("StockQuote"));
        let first = t.resolve_name("StockQuote");
        assert_eq!(&first[..], [PeerId(1)]);
        // A repeat is the *same* shared slice, not a recomputation.
        let again = t.resolve_name("StockQuote");
        assert!(std::sync::Arc::ptr_eq(&first, &again));
        // Namespaces resolve like the signature path does.
        assert_eq!(&t.resolve_name("finance.StockQuote")[..], [PeerId(1)]);
        // A mutation invalidates: the new subscriber appears.
        t.insert(PeerId(2), gb, sig("StockQuote"));
        assert_eq!(&t.resolve_name("StockQuote")[..], [PeerId(1), PeerId(2)]);
        // And a retraction does too.
        t.remove(PeerId(1), ga);
        assert_eq!(&t.resolve_name("StockQuote")[..], [PeerId(2)]);
        t.remove_peer(PeerId(2));
        assert!(t.resolve_name("StockQuote").is_empty());
    }

    #[test]
    fn interner_stays_bounded_under_interest_churn() {
        let mut t = RoutingTable::new();
        // Churn 100 uniquely-named interests through the table...
        for i in 0..100 {
            let g = Guid::derive(&format!("T{i}"), "x");
            t.insert(PeerId(1), g, sig(&format!("Generated{i}Event")));
            assert!(t.remove(PeerId(1), g));
        }
        // ...and only the *live* interests' tokens remain interned.
        assert_eq!(t.interned_tokens(), 0, "evicted with their interests");
        let ga = Guid::derive("A", "x");
        t.insert(PeerId(1), ga, sig("StockQuote"));
        assert_eq!(t.interned_tokens(), 2);
        // Reintroducing an evicted token after other mints cannot
        // collide with a live id: resolution stays exact.
        let gb = Guid::derive("B", "x");
        t.insert(PeerId(2), gb, sig("QuoteFlash"));
        t.remove(PeerId(1), ga);
        t.insert(PeerId(1), ga, sig("StockQuote"));
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(1)]);
        assert_eq!(t.resolve(&sig("QuoteFlash")), vec![PeerId(2)]);
    }

    #[test]
    fn resolve_name_memo_is_bounded_without_mutations() {
        // A stable table (generation never moves) fed a stream of
        // distinct names — the memo resets at the cap instead of
        // growing forever, and stays correct afterwards.
        let mut t = RoutingTable::new();
        t.insert(PeerId(1), Guid::derive("A", "x"), sig("StockQuote"));
        for i in 0..(super::ROUTE_CACHE_MAX_NAMES * 2 + 5) {
            assert!(t.resolve_name(&format!("Unknown{i}Event")).is_empty());
        }
        assert!(t.cache.borrow().by_name.len() <= super::ROUTE_CACHE_MAX_NAMES);
        assert_eq!(&t.resolve_name("StockQuote")[..], [PeerId(1)]);
    }

    #[test]
    fn resolve_name_agrees_with_resolve() {
        let mut t = RoutingTable::new();
        t.insert(PeerId(3), Guid::derive("A", "x"), sig("StockQuote"));
        t.insert(PeerId(1), Guid::derive("B", "x"), Signature::catch_all());
        for name in ["StockQuote", "stock_quote", "Unrelated", "Quote"] {
            assert_eq!(&t.resolve_name(name)[..], t.resolve(&sig(name)), "{name}");
        }
    }

    #[test]
    fn removal_by_identity_and_by_peer() {
        let mut t = RoutingTable::new();
        let (ga, gb) = (Guid::derive("A", "x"), Guid::derive("A", "y"));
        t.insert(PeerId(1), ga, sig("StockQuote"));
        t.insert(PeerId(1), gb, sig("StockQuote"));
        t.insert(PeerId(2), ga, sig("StockQuote"));
        assert!(t.remove(PeerId(1), ga));
        assert!(!t.remove(PeerId(1), ga), "already gone");
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(1), PeerId(2)]);
        t.remove_peer(PeerId(1));
        assert_eq!(t.resolve(&sig("StockQuote")), vec![PeerId(2)]);
        assert_eq!(t.subscribers(), vec![PeerId(2)]);
        assert!(!t.is_empty());
    }
}
