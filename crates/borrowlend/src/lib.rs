//! # pti-borrowlend — the borrow/lend abstraction (paper Section 8)
//!
//! "Lenders can lend resources to borrowers via specific criteria. A
//! possible criterion is type conformance, for a type `T` with which the
//! lent resource's type `T'` must conform."
//!
//! A [`Market`] is a group of peers where lenders *export* live objects
//! (pass-by-reference, via [`pti_remoting`]) and borrowers ask for "any
//! resource whose type conforms to this type of interest". Matching is
//! implicit structural conformance on the borrower's side; borrowed
//! resources are invoked through the conformance-translating remote
//! proxy and returned when done.

#![warn(missing_docs)]

use std::collections::HashMap;

use pti_conformance::ConformanceConfig;
use pti_metamodel::{Assembly, ObjHandle, TypeDescription, Value};
use pti_net::{NetConfig, PeerId, SimNet, Transport};
use pti_remoting::{RemoteProxy, RemotingFabric};
use pti_transport::{Peer, Result, Swarm, TransportError};

/// A lending currently registered in the market.
#[derive(Debug, Clone)]
pub struct Lending {
    /// Unique lending id.
    pub id: u64,
    /// The peer owning the resource.
    pub lender: PeerId,
    /// The wire reference to the resource.
    pub remote: pti_remoting::RemoteRef,
    /// Borrower currently holding the resource, if any.
    pub borrowed_by: Option<PeerId>,
}

/// A successfully borrowed resource.
#[derive(Debug, Clone)]
pub struct Borrowed {
    /// The lending this borrow came from.
    pub lending_id: u64,
    /// Proxy exposing the borrower's type of interest over the remote
    /// resource.
    pub proxy: RemoteProxy,
}

/// A borrow/lend market over a swarm of peers (any transport).
#[derive(Debug)]
pub struct Market<T: Transport = SimNet> {
    swarm: Swarm<T>,
    fabric: RemotingFabric,
    lendings: HashMap<u64, Lending>,
    next_id: u64,
}

impl Market<SimNet> {
    /// Creates an empty market over a simulated network with the given
    /// parameters.
    pub fn new(config: NetConfig) -> Market {
        Market::over(Swarm::new(config))
    }
}

impl<T: Transport> Market<T> {
    /// Creates an empty market over an existing swarm.
    pub fn over(swarm: Swarm<T>) -> Market<T> {
        Market {
            swarm,
            fabric: RemotingFabric::new(),
            lendings: HashMap::new(),
            next_id: 0,
        }
    }

    /// Adds a peer to the market.
    pub fn add_peer(&mut self, config: ConformanceConfig) -> PeerId {
        self.swarm.add_peer(config)
    }

    /// Mutable access to a peer.
    pub fn peer_mut(&mut self, id: PeerId) -> &mut Peer {
        self.swarm.peer_mut(id)
    }

    /// Immutable access to a peer.
    pub fn peer(&self, id: PeerId) -> &Peer {
        self.swarm.peer(id)
    }

    /// The underlying swarm.
    pub fn swarm(&self) -> &Swarm<T> {
        &self.swarm
    }

    /// Publishes an assembly at a peer (types must be published before
    /// their instances can be lent).
    ///
    /// # Errors
    /// Installation conflicts.
    pub fn publish(&mut self, peer: PeerId, assembly: Assembly) -> Result<()> {
        self.swarm.publish(peer, assembly)
    }

    /// Registers a live object as lendable. Returns the lending id.
    ///
    /// # Errors
    /// Dangling handles or unpublished types.
    pub fn lend(&mut self, lender: PeerId, resource: ObjHandle) -> Result<u64> {
        let remote = self.fabric.export(&self.swarm, lender, resource)?;
        self.next_id += 1;
        let id = self.next_id;
        self.lendings.insert(
            id,
            Lending {
                id,
                lender,
                remote,
                borrowed_by: None,
            },
        );
        Ok(id)
    }

    /// All current lendings (available and borrowed).
    pub fn lendings(&self) -> Vec<&Lending> {
        let mut v: Vec<&Lending> = self.lendings.values().collect();
        v.sort_by_key(|l| l.id);
        v
    }

    /// Tries to borrow *any* available resource whose type implicitly
    /// structurally conforms to `interest`. Offers are tried in lending
    /// order; the first reference that passes the borrower's conformance
    /// check wins.
    ///
    /// Returns `None` when nothing conforms.
    ///
    /// # Errors
    /// Transport failures while negotiating.
    pub fn borrow(
        &mut self,
        borrower: PeerId,
        interest: &TypeDescription,
    ) -> Result<Option<Borrowed>> {
        // The borrower's conformance criterion.
        self.swarm.peer_mut(borrower).subscribe(interest.clone());
        let candidates: Vec<(u64, PeerId)> = self
            .lendings()
            .iter()
            .filter(|l| l.borrowed_by.is_none() && l.lender != borrower)
            .map(|l| (l.id, l.lender))
            .collect();
        for (id, lender) in candidates {
            let rref = self.lendings[&id].remote.clone();
            self.fabric
                .offer(&mut self.swarm, lender, borrower, &rref)?;
            self.fabric.run(&mut self.swarm)?;
            let mut proxies = self.fabric.take_proxies(borrower);
            let _ = self.fabric.take_rejected(borrower);
            if let Some(proxy) = proxies.pop() {
                self.lendings.get_mut(&id).expect("exists").borrowed_by = Some(borrower);
                return Ok(Some(Borrowed {
                    lending_id: id,
                    proxy,
                }));
            }
        }
        Ok(None)
    }

    /// Invokes a method on a borrowed resource (synchronous remote call
    /// through the conformance-translating proxy).
    ///
    /// # Errors
    /// Out-of-contract methods or transport/dispatch failures.
    pub fn invoke(
        &mut self,
        borrower: PeerId,
        borrowed: &Borrowed,
        method: &str,
        args: &[Value],
    ) -> Result<Value> {
        self.fabric
            .invoke(&mut self.swarm, borrower, &borrowed.proxy, method, args)
    }

    /// Returns a borrowed resource to the market.
    ///
    /// # Errors
    /// Unknown lending id.
    pub fn give_back(&mut self, lending_id: u64) -> Result<()> {
        let l = self
            .lendings
            .get_mut(&lending_id)
            .ok_or_else(|| TransportError::Protocol(format!("unknown lending #{lending_id}")))?;
        l.borrowed_by = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::{bodies, primitives, ParamDef, TypeDef};

    fn printer_assembly(salt: &str, print_name: &str) -> (Assembly, TypeDef) {
        let def = TypeDef::class("Printer", salt)
            .field("queue", primitives::INT32)
            .method(
                print_name,
                vec![ParamDef::new("doc", primitives::STRING)],
                primitives::INT32,
            )
            .ctor(vec![])
            .build();
        let g = def.guid;
        let asm = Assembly::builder(format!("printer-{salt}"))
            .ty(def.clone())
            .body(
                g,
                print_name,
                1,
                std::sync::Arc::new(|rt: &mut pti_metamodel::Runtime, recv, args: &[Value]| {
                    let h = recv.as_obj()?;
                    let q = rt.get_field(h, "queue")?.as_i32()? + 1;
                    rt.set_field(h, "queue", Value::I32(q))?;
                    let _doc = args[0].as_str()?;
                    Ok(Value::I32(q))
                }),
            )
            .ctor_body(g, 0, bodies::ctor_assign(&[]))
            .build();
        (asm, def)
    }

    fn market_with_printer() -> (Market, PeerId, PeerId, u64) {
        let mut market = Market::new(NetConfig::default());
        let lender = market.add_peer(ConformanceConfig::pragmatic());
        let borrower = market.add_peer(ConformanceConfig::pragmatic());
        let (asm, _) = printer_assembly("lender", "printDocument");
        market.publish(lender, asm).unwrap();
        let h = market
            .peer_mut(lender)
            .runtime
            .instantiate(&"Printer".into(), &[])
            .unwrap();
        let id = market.lend(lender, h).unwrap();
        (market, lender, borrower, id)
    }

    #[test]
    fn borrow_by_conformance_and_invoke() {
        let (mut market, _lender, borrower, id) = market_with_printer();
        // Borrower's criterion: its own Printer view with a shorter name.
        let (_, want) = printer_assembly("borrower", "print");
        let borrowed = market
            .borrow(borrower, &TypeDescription::from_def(&want))
            .unwrap()
            .expect("a conforming printer is available");
        assert_eq!(borrowed.lending_id, id);
        // Invoke under the borrower's contract name.
        let q = market
            .invoke(borrower, &borrowed, "print", &[Value::from("report.pdf")])
            .unwrap();
        assert_eq!(q.as_i32().unwrap(), 1);
        let q2 = market
            .invoke(borrower, &borrowed, "print", &[Value::from("again.pdf")])
            .unwrap();
        assert_eq!(q2.as_i32().unwrap(), 2, "state lives on the lender");
    }

    #[test]
    fn nothing_conforming_returns_none() {
        let (mut market, _lender, borrower, _) = market_with_printer();
        let scanner = TypeDef::class("Scanner", "b")
            .method("scan", vec![], primitives::STRING)
            .build();
        let got = market
            .borrow(borrower, &TypeDescription::from_def(&scanner))
            .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn borrowed_resource_is_exclusive_until_returned() {
        let (mut market, _lender, borrower, id) = market_with_printer();
        let third = market.add_peer(ConformanceConfig::pragmatic());
        let (_, want) = printer_assembly("third", "print");
        let desc = TypeDescription::from_def(&want);
        let first = market.borrow(borrower, &desc).unwrap();
        assert!(first.is_some());
        assert!(
            market.borrow(third, &desc).unwrap().is_none(),
            "already lent out"
        );
        market.give_back(id).unwrap();
        assert!(
            market.borrow(third, &desc).unwrap().is_some(),
            "available again"
        );
    }

    #[test]
    fn lending_listing_tracks_state() {
        let (mut market, lender, borrower, id) = market_with_printer();
        assert_eq!(market.lendings().len(), 1);
        assert_eq!(market.lendings()[0].lender, lender);
        assert!(market.lendings()[0].borrowed_by.is_none());
        let (_, want) = printer_assembly("x", "print");
        market
            .borrow(borrower, &TypeDescription::from_def(&want))
            .unwrap()
            .unwrap();
        assert_eq!(market.lendings()[0].borrowed_by, Some(borrower));
        market.give_back(id).unwrap();
        assert!(market.lendings()[0].borrowed_by.is_none());
        assert!(market.give_back(999).is_err());
    }

    #[test]
    fn own_resources_are_not_offered_back() {
        let (mut market, lender, _borrower, _) = market_with_printer();
        let (_, want) = printer_assembly("self", "print");
        let got = market
            .borrow(lender, &TypeDescription::from_def(&want))
            .unwrap();
        assert!(got.is_none(), "a lender does not borrow its own resource");
    }
}
