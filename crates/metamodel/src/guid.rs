//! 128-bit globally unique type identifiers.
//!
//! The paper (Section 5, footnote 5) relies on the platform's notion of type
//! identity; on .NET these are 128-bit GUIDs. We reproduce them as a 128-bit
//! value derived deterministically from the type's full name plus an
//! arbitrary *salt* identifying the publishing vendor/assembly, so that two
//! independently written types — even with the same name — receive distinct
//! identities, while repeated runs of a deterministic workload derive stable
//! ids (important for reproducible benchmarks).

use std::fmt;
use std::str::FromStr;

/// A 128-bit globally unique identifier for a type.
///
/// Equality of GUIDs is the platform's *type identity*: two types are "the
/// same type" (the paper's `==`) iff their GUIDs are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Guid(pub u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

fn fnv1a_128(bytes: &[u8], seed: u128) -> u128 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Guid {
    /// The all-zero GUID, used as a sentinel for "no identity assigned".
    pub const NIL: Guid = Guid(0);

    /// Derives a GUID from a type's full name and a vendor/assembly salt.
    ///
    /// The derivation is a 128-bit FNV-1a hash — deterministic across runs
    /// and platforms. Different salts model different publishers
    /// independently minting identities for (possibly identically named)
    /// types.
    ///
    /// # Examples
    ///
    /// ```
    /// use pti_metamodel::Guid;
    /// let a = Guid::derive("Acme.Person", "vendor-a");
    /// let b = Guid::derive("Acme.Person", "vendor-b");
    /// assert_ne!(a, b);
    /// assert_eq!(a, Guid::derive("Acme.Person", "vendor-a"));
    /// ```
    pub fn derive(full_name: &str, salt: &str) -> Guid {
        let seed = fnv1a_128(salt.as_bytes(), 0);
        Guid(fnv1a_128(full_name.as_bytes(), seed))
    }

    /// Returns `true` if this is the [`NIL`](Self::NIL) sentinel.
    pub fn is_nil(self) -> bool {
        self.0 == 0
    }

    /// Raw little-endian bytes of the identifier (for binary serialization).
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Reconstructs a GUID from little-endian bytes produced by
    /// [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: [u8; 16]) -> Guid {
        Guid(u128::from_le_bytes(bytes))
    }
}

impl fmt::Display for Guid {
    /// Formats in the canonical 8-4-4-4-12 hex form, like .NET GUIDs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(
            f,
            "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15]
        )
    }
}

/// Error returned when parsing a malformed GUID string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGuidError;

impl fmt::Display for ParseGuidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed GUID (expected 32 hex digits with optional dashes)"
        )
    }
}

impl std::error::Error for ParseGuidError {}

impl FromStr for Guid {
    type Err = ParseGuidError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let mut v: u128 = 0;
        let mut digits = 0;
        for b in s.bytes() {
            if b == b'-' {
                continue;
            }
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(ParseGuidError),
            };
            digits += 1;
            if digits > 32 {
                return Err(ParseGuidError);
            }
            v = (v << 4) | u128::from(d);
        }
        if digits != 32 {
            return Err(ParseGuidError);
        }
        Ok(Guid(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(Guid::derive("Person", "a"), Guid::derive("Person", "a"));
    }

    #[test]
    fn derive_distinguishes_salt_and_name() {
        assert_ne!(Guid::derive("Person", "a"), Guid::derive("Person", "b"));
        assert_ne!(Guid::derive("Person", "a"), Guid::derive("Human", "a"));
    }

    #[test]
    fn display_roundtrip() {
        let g = Guid::derive("Acme.Person", "vendor-a");
        let s = g.to_string();
        assert_eq!(s.len(), 36);
        assert_eq!(s.parse::<Guid>().unwrap(), g);
    }

    #[test]
    fn parse_without_dashes() {
        let g = Guid::derive("X", "y");
        let compact: String = g.to_string().chars().filter(|c| *c != '-').collect();
        assert_eq!(compact.parse::<Guid>().unwrap(), g);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not-a-guid".parse::<Guid>().is_err());
        assert!("".parse::<Guid>().is_err());
        assert!("123".parse::<Guid>().is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let g = Guid::derive("T", "s");
        assert_eq!(Guid::from_bytes(g.to_bytes()), g);
    }

    #[test]
    fn nil_is_nil() {
        assert!(Guid::NIL.is_nil());
        assert!(!Guid::derive("T", "s").is_nil());
    }
}
