//! Static structure of types: definitions of classes, interfaces,
//! primitives, their fields, methods and constructors.
//!
//! This is the "common type system" substrate the paper assumes from .NET.
//! A [`TypeDef`] carries exactly the structure the conformance rules
//! (Section 4) inspect: name, supertypes, fields, method signatures and
//! constructor signatures — plus a [`Guid`] establishing type identity.

use std::fmt;

use crate::guid::Guid;
use crate::names::TypeName;

/// What kind of type a [`TypeDef`] defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// A concrete or abstract class.
    Class,
    /// An interface (no fields, no constructors, abstract methods only).
    Interface,
    /// A built-in primitive (`Int32`, `String`, ...).
    Primitive,
}

impl fmt::Display for TypeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeKind::Class => f.write_str("class"),
            TypeKind::Interface => f.write_str("interface"),
            TypeKind::Primitive => f.write_str("primitive"),
        }
    }
}

/// Member and type modifiers.
///
/// The paper's method rule assumes "the modifiers of the methods are
/// supposed to be the same"; this compact bit-set is what gets compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Modifiers(u8);

impl Modifiers {
    /// `public` visibility.
    pub const PUBLIC: Modifiers = Modifiers(1);
    /// `static` member.
    pub const STATIC: Modifiers = Modifiers(1 << 1);
    /// `virtual` (overridable) method.
    pub const VIRTUAL: Modifiers = Modifiers(1 << 2);
    /// `abstract` method or class.
    pub const ABSTRACT: Modifiers = Modifiers(1 << 3);
    /// `final`/`sealed` method or class.
    pub const FINAL: Modifiers = Modifiers(1 << 4);

    /// The empty modifier set.
    pub const fn empty() -> Modifiers {
        Modifiers(0)
    }

    /// Union of two modifier sets.
    #[must_use]
    pub const fn union(self, other: Modifiers) -> Modifiers {
        Modifiers(self.0 | other.0)
    }

    /// Whether every modifier in `other` is present in `self`.
    pub const fn contains(self, other: Modifiers) -> bool {
        (self.0 & other.0) == other.0
    }

    /// Raw bits (stable across serialization).
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs from raw bits, masking unknown bits away.
    pub const fn from_bits(bits: u8) -> Modifiers {
        Modifiers(bits & 0b1_1111)
    }
}

impl std::ops::BitOr for Modifiers {
    type Output = Modifiers;
    fn bitor(self, rhs: Modifiers) -> Modifiers {
        self.union(rhs)
    }
}

impl fmt::Display for Modifiers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.contains(Self::PUBLIC) {
            parts.push("public");
        }
        if self.contains(Self::STATIC) {
            parts.push("static");
        }
        if self.contains(Self::VIRTUAL) {
            parts.push("virtual");
        }
        if self.contains(Self::ABSTRACT) {
            parts.push("abstract");
        }
        if self.contains(Self::FINAL) {
            parts.push("final");
        }
        f.write_str(&parts.join(" "))
    }
}

/// A formal parameter of a method or constructor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamDef {
    /// Parameter name (informational; not part of conformance).
    pub name: String,
    /// Parameter type, referenced by name (descriptions are non-recursive).
    pub ty: TypeName,
}

impl ParamDef {
    /// Creates a parameter definition.
    pub fn new(name: impl Into<String>, ty: impl Into<TypeName>) -> ParamDef {
        ParamDef {
            name: name.into(),
            ty: ty.into(),
        }
    }
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Field type, referenced by name.
    pub ty: TypeName,
    /// Field modifiers.
    pub modifiers: Modifiers,
}

impl FieldDef {
    /// Creates a public field definition.
    pub fn new(name: impl Into<String>, ty: impl Into<TypeName>) -> FieldDef {
        FieldDef {
            name: name.into(),
            ty: ty.into(),
            modifiers: Modifiers::PUBLIC,
        }
    }
}

/// A method signature: name, parameters, return type and modifiers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodSig {
    /// Method name.
    pub name: String,
    /// Formal parameters, in declaration order.
    pub params: Vec<ParamDef>,
    /// Return type, referenced by name; `Void` for procedures.
    pub return_type: TypeName,
    /// Method modifiers (compared verbatim by the conformance rule).
    pub modifiers: Modifiers,
}

impl MethodSig {
    /// Creates a public method signature.
    pub fn new(
        name: impl Into<String>,
        params: Vec<ParamDef>,
        return_type: impl Into<TypeName>,
    ) -> MethodSig {
        MethodSig {
            name: name.into(),
            params,
            return_type: return_type.into(),
            modifiers: Modifiers::PUBLIC,
        }
    }

    /// Number of formal parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Human-readable `name(T1, T2) -> R` form for diagnostics.
    pub fn brief(&self) -> String {
        let params: Vec<&str> = self.params.iter().map(|p| p.ty.full()).collect();
        format!(
            "{}({}) -> {}",
            self.name,
            params.join(", "),
            self.return_type
        )
    }
}

/// A constructor signature: parameters and modifiers (no name, no return —
/// the paper's rule (v) is "the same as for methods except that there are
/// no return values").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CtorSig {
    /// Formal parameters, in declaration order.
    pub params: Vec<ParamDef>,
    /// Constructor modifiers.
    pub modifiers: Modifiers,
}

impl CtorSig {
    /// Creates a public constructor signature.
    pub fn new(params: Vec<ParamDef>) -> CtorSig {
        CtorSig {
            params,
            modifiers: Modifiers::PUBLIC,
        }
    }

    /// Number of formal parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// The full static definition of a type.
///
/// Everything the paper's implicit structural conformance rule looks at is
/// here; the *behaviour* (method bodies) lives separately in an
/// [`Assembly`](crate::assembly::Assembly), mirroring the paper's split
/// between type descriptions (cheap to ship) and code (downloaded last).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDef {
    /// Full name of the type.
    pub name: TypeName,
    /// Identity of the type (the platform GUID).
    pub guid: Guid,
    /// Class, interface or primitive.
    pub kind: TypeKind,
    /// Type-level modifiers.
    pub modifiers: Modifiers,
    /// Superclass, by name (`None` only for the root `Object`, primitives
    /// and interfaces without a superclass notion).
    pub superclass: Option<TypeName>,
    /// Implemented interfaces, by name.
    pub interfaces: Vec<TypeName>,
    /// Declared fields (not including inherited ones).
    pub fields: Vec<FieldDef>,
    /// Declared methods (not including inherited ones).
    pub methods: Vec<MethodSig>,
    /// Declared constructors.
    pub constructors: Vec<CtorSig>,
}

impl TypeDef {
    /// Starts building a class with the given full name and identity salt.
    ///
    /// The GUID is derived from the name and salt (see [`Guid::derive`]).
    pub fn class(name: impl Into<TypeName>, salt: &str) -> TypeDefBuilder {
        TypeDefBuilder::new(name.into(), salt, TypeKind::Class)
    }

    /// Starts building an interface.
    pub fn interface(name: impl Into<TypeName>, salt: &str) -> TypeDefBuilder {
        TypeDefBuilder::new(name.into(), salt, TypeKind::Interface)
    }

    /// Finds a declared method by name (exact, case-sensitive) and arity.
    pub fn find_method(&self, name: &str, arity: usize) -> Option<(usize, &MethodSig)> {
        self.methods
            .iter()
            .enumerate()
            .find(|(_, m)| m.name == name && m.arity() == arity)
    }

    /// Finds a declared field by name.
    pub fn find_field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Finds a constructor by arity.
    pub fn find_ctor(&self, arity: usize) -> Option<(usize, &CtorSig)> {
        self.constructors
            .iter()
            .enumerate()
            .find(|(_, c)| c.arity() == arity)
    }

    /// Whether instances of this type can be created (concrete classes only).
    pub fn is_instantiable(&self) -> bool {
        self.kind == TypeKind::Class && !self.modifiers.contains(Modifiers::ABSTRACT)
    }
}

/// Fluent builder for [`TypeDef`]s.
///
/// # Examples
///
/// ```
/// use pti_metamodel::{TypeDef, ParamDef, primitives};
///
/// let person = TypeDef::class("Acme.Person", "vendor-a")
///     .field("name", primitives::STRING)
///     .method("getName", vec![], primitives::STRING)
///     .method("setName", vec![ParamDef::new("n", primitives::STRING)], primitives::VOID)
///     .ctor(vec![ParamDef::new("n", primitives::STRING)])
///     .build();
/// assert_eq!(person.methods.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TypeDefBuilder {
    def: TypeDef,
}

impl TypeDefBuilder {
    fn new(name: TypeName, salt: &str, kind: TypeKind) -> TypeDefBuilder {
        let guid = Guid::derive(name.full(), salt);
        let superclass = match kind {
            TypeKind::Class => Some(TypeName::new(crate::primitives::OBJECT)),
            _ => None,
        };
        TypeDefBuilder {
            def: TypeDef {
                name,
                guid,
                kind,
                modifiers: Modifiers::PUBLIC,
                superclass,
                interfaces: Vec::new(),
                fields: Vec::new(),
                methods: Vec::new(),
                constructors: Vec::new(),
            },
        }
    }

    /// Sets the superclass (classes default to the root `Object`).
    #[must_use]
    pub fn extends(mut self, superclass: impl Into<TypeName>) -> Self {
        self.def.superclass = Some(superclass.into());
        self
    }

    /// Removes the superclass entirely (used for root types).
    #[must_use]
    pub fn no_superclass(mut self) -> Self {
        self.def.superclass = None;
        self
    }

    /// Adds an implemented interface.
    #[must_use]
    pub fn implements(mut self, iface: impl Into<TypeName>) -> Self {
        self.def.interfaces.push(iface.into());
        self
    }

    /// Adds a public field.
    #[must_use]
    pub fn field(mut self, name: impl Into<String>, ty: impl Into<TypeName>) -> Self {
        self.def.fields.push(FieldDef::new(name, ty));
        self
    }

    /// Adds a public method.
    #[must_use]
    pub fn method(
        mut self,
        name: impl Into<String>,
        params: Vec<ParamDef>,
        return_type: impl Into<TypeName>,
    ) -> Self {
        self.def
            .methods
            .push(MethodSig::new(name, params, return_type));
        self
    }

    /// Adds a method with explicit modifiers.
    #[must_use]
    pub fn method_with(mut self, sig: MethodSig) -> Self {
        self.def.methods.push(sig);
        self
    }

    /// Adds a public constructor.
    #[must_use]
    pub fn ctor(mut self, params: Vec<ParamDef>) -> Self {
        self.def.constructors.push(CtorSig::new(params));
        self
    }

    /// Replaces the type modifiers.
    #[must_use]
    pub fn modifiers(mut self, m: Modifiers) -> Self {
        self.def.modifiers = m;
        self
    }

    /// Overrides the derived GUID with an explicit identity.
    #[must_use]
    pub fn guid(mut self, guid: Guid) -> Self {
        self.def.guid = guid;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> TypeDef {
        self.def
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;

    fn person() -> TypeDef {
        TypeDef::class("Acme.Person", "vendor-a")
            .field("name", primitives::STRING)
            .method("getName", vec![], primitives::STRING)
            .method(
                "setName",
                vec![ParamDef::new("n", primitives::STRING)],
                primitives::VOID,
            )
            .ctor(vec![])
            .build()
    }

    #[test]
    fn builder_populates_definition() {
        let p = person();
        assert_eq!(p.name.full(), "Acme.Person");
        assert_eq!(p.kind, TypeKind::Class);
        assert_eq!(p.superclass.as_ref().unwrap().full(), primitives::OBJECT);
        assert_eq!(p.fields.len(), 1);
        assert_eq!(p.methods.len(), 2);
        assert_eq!(p.constructors.len(), 1);
        assert!(!p.guid.is_nil());
    }

    #[test]
    fn find_method_respects_arity() {
        let p = person();
        assert!(p.find_method("getName", 0).is_some());
        assert!(p.find_method("getName", 1).is_none());
        assert!(p.find_method("setName", 1).is_some());
        assert!(p.find_method("nope", 0).is_none());
    }

    #[test]
    fn find_field_and_ctor() {
        let p = person();
        assert!(p.find_field("name").is_some());
        assert!(p.find_field("age").is_none());
        assert!(p.find_ctor(0).is_some());
        assert!(p.find_ctor(3).is_none());
    }

    #[test]
    fn interface_has_no_superclass() {
        let i = TypeDef::interface("Acme.INamed", "vendor-a")
            .method("getName", vec![], primitives::STRING)
            .build();
        assert_eq!(i.kind, TypeKind::Interface);
        assert!(i.superclass.is_none());
        assert!(!i.is_instantiable());
    }

    #[test]
    fn abstract_class_not_instantiable() {
        let a = TypeDef::class("A", "s")
            .modifiers(Modifiers::PUBLIC | Modifiers::ABSTRACT)
            .build();
        assert!(!a.is_instantiable());
        assert!(person().is_instantiable());
    }

    #[test]
    fn modifiers_algebra() {
        let m = Modifiers::PUBLIC | Modifiers::STATIC;
        assert!(m.contains(Modifiers::PUBLIC));
        assert!(m.contains(Modifiers::STATIC));
        assert!(!m.contains(Modifiers::FINAL));
        assert_eq!(Modifiers::from_bits(m.bits()), m);
        assert_eq!(m.to_string(), "public static");
    }

    #[test]
    fn method_brief_formats() {
        let p = person();
        assert_eq!(p.methods[1].brief(), "setName(String) -> Void");
    }

    #[test]
    fn guids_differ_per_salt() {
        let a = TypeDef::class("P", "a").build();
        let b = TypeDef::class("P", "b").build();
        assert_ne!(a.guid, b.guid);
    }
}
