//! Built-in primitive types and the root `Object` class.
//!
//! Mirrors the CLR's built-in value types that the paper's prototype leans
//! on. Every [`Runtime`](crate::runtime::Runtime) pre-registers these, so
//! two independently built peers always agree on primitive identity — just
//! like two .NET installations agree on `System.Int32`.

use crate::guid::Guid;
use crate::names::TypeName;
use crate::types::{Modifiers, TypeDef, TypeKind};

/// Name of the `Void` pseudo-type (return type of procedures).
pub const VOID: &str = "Void";
/// Name of the boolean primitive.
pub const BOOL: &str = "Boolean";
/// Name of the 32-bit integer primitive.
pub const INT32: &str = "Int32";
/// Name of the 64-bit integer primitive.
pub const INT64: &str = "Int64";
/// Name of the 64-bit float primitive.
pub const FLOAT64: &str = "Float64";
/// Name of the string primitive.
pub const STRING: &str = "String";
/// Name of the root class every class ultimately extends.
pub const OBJECT: &str = "Object";

/// Salt under which the platform itself mints primitive identities.
/// Shared by all runtimes, so primitives are identity-equal everywhere.
pub const PLATFORM_SALT: &str = "pti-platform";

/// All primitive type names (excluding the root `Object` class).
pub const ALL_PRIMITIVES: [&str; 6] = [VOID, BOOL, INT32, INT64, FLOAT64, STRING];

fn primitive_def(name: &str) -> TypeDef {
    TypeDef {
        name: TypeName::new(name),
        guid: Guid::derive(name, PLATFORM_SALT),
        kind: TypeKind::Primitive,
        modifiers: Modifiers::PUBLIC | Modifiers::FINAL,
        superclass: None,
        interfaces: Vec::new(),
        fields: Vec::new(),
        methods: Vec::new(),
        constructors: Vec::new(),
    }
}

/// The definition of the root `Object` class.
pub fn object_def() -> TypeDef {
    TypeDef {
        name: TypeName::new(OBJECT),
        guid: Guid::derive(OBJECT, PLATFORM_SALT),
        kind: TypeKind::Class,
        modifiers: Modifiers::PUBLIC,
        superclass: None,
        interfaces: Vec::new(),
        fields: Vec::new(),
        methods: Vec::new(),
        constructors: vec![crate::types::CtorSig::new(vec![])],
    }
}

/// Definitions of every built-in type (primitives plus `Object`), in a
/// stable order.
pub fn builtin_defs() -> Vec<TypeDef> {
    let mut defs: Vec<TypeDef> = ALL_PRIMITIVES.iter().map(|n| primitive_def(n)).collect();
    defs.push(object_def());
    defs
}

/// Whether `name` names a built-in primitive (arrays are not primitives).
pub fn is_primitive(name: &TypeName) -> bool {
    ALL_PRIMITIVES.iter().any(|p| name.full() == *p)
}

/// Whether `name` is a built-in (primitive or `Object`).
pub fn is_builtin(name: &TypeName) -> bool {
    is_primitive(name) || name.full() == OBJECT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_cover_primitives_and_object() {
        let defs = builtin_defs();
        assert_eq!(defs.len(), ALL_PRIMITIVES.len() + 1);
        assert!(defs.iter().any(|d| d.name.full() == OBJECT));
    }

    #[test]
    fn primitive_identity_is_platform_wide() {
        let a = builtin_defs();
        let b = builtin_defs();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.guid, y.guid);
        }
    }

    #[test]
    fn classification() {
        assert!(is_primitive(&TypeName::new(INT32)));
        assert!(!is_primitive(&TypeName::new(OBJECT)));
        assert!(is_builtin(&TypeName::new(OBJECT)));
        assert!(!is_builtin(&TypeName::new("Acme.Person")));
        assert!(!is_primitive(&TypeName::new("Int32[]")));
    }

    #[test]
    fn object_is_root() {
        let o = object_def();
        assert!(o.superclass.is_none());
        assert_eq!(o.kind, TypeKind::Class);
        assert!(o.is_instantiable());
    }
}
