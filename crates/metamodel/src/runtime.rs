//! The runtime: registry + heap + native method bodies.
//!
//! A [`Runtime`] is one peer's "CLR": it knows a set of types, holds live
//! objects, and can instantiate types and dispatch method invocations on
//! them. Method *bodies* are native Rust closures installed by
//! [`Assembly`](crate::assembly::Assembly) loading — the stand-in for
//! downloading and JIT-loading .NET assemblies.

use std::collections::HashMap;
use std::sync::Arc;

use crate::descriptor::TypeDescription;
use crate::error::{MetamodelError, Result};
use crate::guid::Guid;
use crate::heap::Heap;
use crate::names::TypeName;
use crate::primitives;
use crate::registry::TypeRegistry;
use crate::types::{TypeDef, TypeKind};
use crate::value::{DynObject, ObjHandle, Value};

/// A native method body.
///
/// Receives the runtime (so bodies can touch other objects), the receiver
/// (`Value::Null` for constructors *before* field initialization completes
/// is never the case — the receiver is always the allocated object), and
/// the argument values. Returns the method result.
pub type NativeFn = Arc<dyn Fn(&mut Runtime, Value, &[Value]) -> Result<Value> + Send + Sync>;

/// Name under which constructor bodies are keyed.
pub const CTOR_NAME: &str = "<ctor>";

#[derive(Clone)]
struct BodyKey(Guid, String, usize);

impl std::hash::Hash for BodyKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
        self.1.hash(state);
        self.2.hash(state);
    }
}
impl PartialEq for BodyKey {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1 && self.2 == other.2
    }
}
impl Eq for BodyKey {}

/// One peer's object runtime.
pub struct Runtime {
    /// The types this runtime knows.
    pub registry: TypeRegistry,
    /// Live objects.
    pub heap: Heap,
    bodies: HashMap<BodyKey, NativeFn>,
    /// Cached flattened field layouts per type — the moral equivalent of
    /// the CLR's cached (de)serialization plans; object allocation is a
    /// hot path for deserializers.
    layouts: HashMap<Guid, Arc<Vec<(String, TypeName)>>>,
    /// Cached default-initialized instances per type: allocation clones
    /// the template instead of re-deriving every field default.
    templates: HashMap<Guid, DynObject>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("types", &self.registry.len())
            .field("objects", &self.heap.len())
            .field("bodies", &self.bodies.len())
            .finish()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime {
    /// Creates a runtime with the platform builtins registered.
    pub fn new() -> Runtime {
        Runtime {
            registry: TypeRegistry::with_builtins(),
            heap: Heap::new(),
            bodies: HashMap::new(),
            layouts: HashMap::new(),
            templates: HashMap::new(),
        }
    }

    /// Registers a type definition (idempotent for identical defs).
    pub fn register_type(&mut self, def: TypeDef) -> Result<()> {
        self.registry.register(def)?;
        // Field layouts of subclasses may change when a superclass
        // becomes resolvable; recompute lazily.
        self.layouts.clear();
        self.templates.clear();
        Ok(())
    }

    /// A default-initialized instance of `def`, from the template cache.
    fn blank_instance(&mut self, def: &TypeDef) -> Result<DynObject> {
        if let Some(t) = self.templates.get(&def.guid) {
            return Ok(t.clone());
        }
        let mut obj = DynObject::new(def.guid);
        for (fname, fty) in self.layout(def)?.iter() {
            obj.set(fname.clone(), Self::default_value(fty));
        }
        self.templates.insert(def.guid, obj.clone());
        Ok(obj)
    }

    /// Cached flattened field layout for a type.
    fn layout(&mut self, def: &TypeDef) -> Result<Arc<Vec<(String, TypeName)>>> {
        if let Some(l) = self.layouts.get(&def.guid) {
            return Ok(Arc::clone(l));
        }
        let layout = Arc::new(self.flattened_fields(def)?);
        self.layouts.insert(def.guid, Arc::clone(&layout));
        Ok(layout)
    }

    /// Installs a native body for `type_guid::method/arity`.
    pub fn register_body(
        &mut self,
        type_guid: Guid,
        method: impl Into<String>,
        arity: usize,
        body: NativeFn,
    ) {
        self.bodies
            .insert(BodyKey(type_guid, method.into(), arity), body);
    }

    /// Whether a body is installed for the given method.
    pub fn has_body(&self, type_guid: Guid, method: &str, arity: usize) -> bool {
        self.bodies
            .contains_key(&BodyKey(type_guid, method.to_string(), arity))
    }

    /// Resolves a method to its native body *once*, walking the
    /// superclass chain — the analogue of a compiled (early-bound) call
    /// site. Invoking the returned closure repeatedly skips the per-call
    /// dispatch that [`invoke`](Self::invoke) performs.
    pub fn bind_method(&self, type_guid: Guid, method: &str, arity: usize) -> Option<NativeFn> {
        let mut cur = self.registry.get(type_guid);
        let mut hops = 0;
        while let Some(d) = cur {
            if d.find_method(method, arity).is_some() {
                return self
                    .bodies
                    .get(&BodyKey(d.guid, method.to_string(), arity))
                    .cloned();
            }
            hops += 1;
            if hops > 64 {
                return None;
            }
            cur = d.superclass.as_ref().and_then(|s| self.registry.resolve(s));
        }
        None
    }

    /// The default value for a type name: `0`/`false`/`""` for primitives,
    /// `Null` for everything else (references and arrays).
    pub fn default_value(name: &TypeName) -> Value {
        match name.full() {
            primitives::BOOL => Value::Bool(false),
            primitives::INT32 => Value::I32(0),
            primitives::INT64 => Value::I64(0),
            primitives::FLOAT64 => Value::F64(0.0),
            primitives::STRING => Value::Str(String::new()),
            _ if name.is_array() => Value::Array(Vec::new()),
            _ => Value::Null,
        }
    }

    /// All fields of a type, flattened over its superclass chain
    /// (subclass fields shadow superclass fields of the same name).
    pub fn flattened_fields(&self, def: &TypeDef) -> Result<Vec<(String, TypeName)>> {
        let mut out: Vec<(String, TypeName)> = Vec::new();
        // Collect the superclass chain (the leaf `def` itself is borrowed,
        // not cloned — this path runs on every object allocation).
        let mut supers: Vec<Arc<TypeDef>> = Vec::new();
        let mut cur = match &def.superclass {
            Some(s) => self.registry.resolve(s),
            None => None,
        };
        let mut hops = 0;
        while let Some(d) = cur {
            hops += 1;
            if hops > 64 {
                // Malformed cyclic hierarchy: stop flattening.
                break;
            }
            cur = match &d.superclass {
                Some(s) if !supers.iter().any(|x| x.guid == d.guid) => self.registry.resolve(s),
                _ => None,
            };
            supers.push(d);
        }
        // Superclass fields first, then subclasses shadow.
        for d in supers
            .iter()
            .rev()
            .map(|a| a.as_ref())
            .chain(std::iter::once(def))
        {
            for f in &d.fields {
                if let Some(slot) = out.iter_mut().find(|(n, _)| n == &f.name) {
                    slot.1 = f.ty.clone();
                } else {
                    out.push((f.name.clone(), f.ty.clone()));
                }
            }
        }
        Ok(out)
    }

    /// Instantiates a type by name with constructor arguments.
    ///
    /// Fields are default-initialized, then the matching-arity constructor
    /// body runs if one is installed (a missing ctor body is allowed iff
    /// the constructor is declared with that arity — state then stays at
    /// defaults, which is how deserializers build objects).
    ///
    /// # Errors
    /// Unknown name, non-instantiable type, or no constructor of the given
    /// arity.
    pub fn instantiate(&mut self, name: &TypeName, args: &[Value]) -> Result<ObjHandle> {
        let def = self.registry.require_name(name)?;
        self.instantiate_def(&def, args)
    }

    /// Instantiates by explicit definition (used when several homonymous
    /// types are registered).
    pub fn instantiate_def(&mut self, def: &TypeDef, args: &[Value]) -> Result<ObjHandle> {
        if !def.is_instantiable() {
            return Err(MetamodelError::NotInstantiable(def.name.clone()));
        }
        if def.find_ctor(args.len()).is_none() {
            return Err(MetamodelError::UnknownConstructor {
                ty: def.name.clone(),
                arity: args.len(),
            });
        }
        let obj = self.blank_instance(def)?;
        let handle = self.heap.alloc(obj);
        let key = BodyKey(def.guid, CTOR_NAME.to_string(), args.len());
        if let Some(body) = self.bodies.get(&key).cloned() {
            body(self, Value::Obj(handle), args)?;
        }
        Ok(handle)
    }

    /// Allocates an object of `def`'s type *without* running a constructor
    /// (all fields at defaults). Used by deserializers.
    pub fn allocate_raw(&mut self, def: &TypeDef) -> Result<ObjHandle> {
        if def.kind != TypeKind::Class {
            return Err(MetamodelError::NotInstantiable(def.name.clone()));
        }
        let obj = self.blank_instance(def)?;
        Ok(self.heap.alloc(obj))
    }

    /// The definition of an object's type.
    pub fn type_of(&self, handle: ObjHandle) -> Result<Arc<TypeDef>> {
        let obj = self.heap.get(handle)?;
        self.registry.require(obj.type_guid)
    }

    /// Invokes `method` on the object behind `handle`, dispatching through
    /// the superclass chain.
    ///
    /// # Errors
    /// Unknown method (searched by name and arity through the chain), or a
    /// declared method whose body was never installed
    /// ([`MetamodelError::MissingBody`]).
    pub fn invoke(&mut self, handle: ObjHandle, method: &str, args: &[Value]) -> Result<Value> {
        let def = self.type_of(handle)?;
        let mut cur: Option<Arc<TypeDef>> = Some(def.clone());
        let mut hops = 0;
        while let Some(d) = cur {
            if d.find_method(method, args.len()).is_some() {
                let key = BodyKey(d.guid, method.to_string(), args.len());
                let body =
                    self.bodies
                        .get(&key)
                        .cloned()
                        .ok_or_else(|| MetamodelError::MissingBody {
                            ty: d.name.clone(),
                            method: method.to_string(),
                        })?;
                return body(self, Value::Obj(handle), args);
            }
            hops += 1;
            if hops > 64 {
                break;
            }
            cur = match &d.superclass {
                Some(s) => self.registry.resolve(s),
                None => None,
            };
        }
        Err(MetamodelError::UnknownMethod {
            ty: def.name.clone(),
            method: method.to_string(),
            arity: args.len(),
        })
    }

    /// Reads a field of an object.
    pub fn get_field(&self, handle: ObjHandle, field: &str) -> Result<Value> {
        let obj = self.heap.get(handle)?;
        obj.get(field).cloned().ok_or_else(|| {
            let ty = self
                .registry
                .get(obj.type_guid)
                .map(|d| d.name.clone())
                .unwrap_or_else(|| TypeName::new("<unknown>"));
            MetamodelError::UnknownField {
                ty,
                field: field.to_string(),
            }
        })
    }

    /// Writes a field of an object.
    ///
    /// # Errors
    /// The field must already exist on the object (fields are fixed by the
    /// type at instantiation).
    pub fn set_field(&mut self, handle: ObjHandle, field: &str, value: Value) -> Result<()> {
        let type_guid = self.heap.get(handle)?.type_guid;
        let obj = self.heap.get_mut(handle)?;
        if obj.get(field).is_none() {
            let ty = self
                .registry
                .get(type_guid)
                .map(|d| d.name.clone())
                .unwrap_or_else(|| TypeName::new("<unknown>"));
            return Err(MetamodelError::UnknownField {
                ty,
                field: field.to_string(),
            });
        }
        obj.set(field, value);
        Ok(())
    }

    /// Introspects a registered type into its shippable description.
    pub fn describe(&self, name: &TypeName) -> Result<TypeDescription> {
        Ok(TypeDescription::from_def(
            &*self.registry.require_name(name)?,
        ))
    }

    /// Introspects by identity.
    pub fn describe_guid(&self, guid: Guid) -> Result<TypeDescription> {
        Ok(TypeDescription::from_def(&*self.registry.require(guid)?))
    }
}

/// Ready-made native bodies for the ubiquitous accessor patterns.
pub mod bodies {
    use super::*;

    /// A body returning the named field of the receiver (`getX` pattern).
    pub fn getter(field: &str) -> NativeFn {
        let field = field.to_string();
        Arc::new(move |rt, recv, _args| {
            let h = recv.as_obj()?;
            rt.get_field(h, &field)
        })
    }

    /// A body storing its single argument into the named field of the
    /// receiver (`setX` pattern) and returning `Null`.
    pub fn setter(field: &str) -> NativeFn {
        let field = field.to_string();
        Arc::new(move |rt, recv, args| {
            let h = recv.as_obj()?;
            let v = args.first().cloned().unwrap_or(Value::Null);
            rt.set_field(h, &field, v)?;
            Ok(Value::Null)
        })
    }

    /// A constructor body assigning arguments to fields positionally.
    pub fn ctor_assign(fields: &[&str]) -> NativeFn {
        let fields: Vec<String> = fields.iter().map(|s| s.to_string()).collect();
        Arc::new(move |rt, recv, args| {
            let h = recv.as_obj()?;
            for (f, v) in fields.iter().zip(args.iter()) {
                rt.set_field(h, f, v.clone())?;
            }
            Ok(Value::Null)
        })
    }

    /// A body returning a constant value (useful in tests).
    pub fn constant(v: Value) -> NativeFn {
        Arc::new(move |_rt, _recv, _args| Ok(v.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ParamDef;

    fn person_def() -> TypeDef {
        TypeDef::class("Person", "vendor-a")
            .field("name", primitives::STRING)
            .method("getName", vec![], primitives::STRING)
            .method(
                "setName",
                vec![ParamDef::new("n", primitives::STRING)],
                primitives::VOID,
            )
            .ctor(vec![])
            .ctor(vec![ParamDef::new("n", primitives::STRING)])
            .build()
    }

    fn runtime_with_person() -> (Runtime, Guid) {
        let mut rt = Runtime::new();
        let def = person_def();
        let g = def.guid;
        rt.register_type(def).unwrap();
        rt.register_body(g, "getName", 0, bodies::getter("name"));
        rt.register_body(g, "setName", 1, bodies::setter("name"));
        rt.register_body(g, CTOR_NAME, 1, bodies::ctor_assign(&["name"]));
        (rt, g)
    }

    #[test]
    fn instantiate_runs_ctor() {
        let (mut rt, _) = runtime_with_person();
        let h = rt
            .instantiate(&TypeName::new("Person"), &[Value::from("alice")])
            .unwrap();
        assert_eq!(rt.get_field(h, "name").unwrap().as_str().unwrap(), "alice");
    }

    #[test]
    fn instantiate_without_ctor_body_defaults_fields() {
        let (mut rt, _) = runtime_with_person();
        let h = rt.instantiate(&TypeName::new("Person"), &[]).unwrap();
        assert_eq!(rt.get_field(h, "name").unwrap().as_str().unwrap(), "");
    }

    #[test]
    fn invoke_getter_setter() {
        let (mut rt, _) = runtime_with_person();
        let h = rt.instantiate(&TypeName::new("Person"), &[]).unwrap();
        rt.invoke(h, "setName", &[Value::from("bob")]).unwrap();
        let v = rt.invoke(h, "getName", &[]).unwrap();
        assert_eq!(v.as_str().unwrap(), "bob");
    }

    #[test]
    fn invoke_unknown_method_errors() {
        let (mut rt, _) = runtime_with_person();
        let h = rt.instantiate(&TypeName::new("Person"), &[]).unwrap();
        let err = rt.invoke(h, "fly", &[]).unwrap_err();
        assert!(matches!(err, MetamodelError::UnknownMethod { .. }));
    }

    #[test]
    fn invoke_declared_but_bodyless_method_reports_missing_assembly() {
        let mut rt = Runtime::new();
        let def = person_def();
        rt.register_type(def).unwrap();
        let h = rt.instantiate(&TypeName::new("Person"), &[]).unwrap();
        let err = rt.invoke(h, "getName", &[]).unwrap_err();
        assert!(matches!(err, MetamodelError::MissingBody { .. }));
    }

    #[test]
    fn inherited_method_dispatch() {
        let mut rt = Runtime::new();
        let base = TypeDef::class("Base", "v")
            .field("x", primitives::INT32)
            .method("getX", vec![], primitives::INT32)
            .ctor(vec![])
            .build();
        let derived = TypeDef::class("Derived", "v")
            .extends("Base")
            .field("y", primitives::INT32)
            .ctor(vec![])
            .build();
        let bg = base.guid;
        rt.register_type(base).unwrap();
        rt.register_type(derived).unwrap();
        rt.register_body(bg, "getX", 0, bodies::getter("x"));
        let h = rt.instantiate(&TypeName::new("Derived"), &[]).unwrap();
        rt.set_field(h, "x", Value::I32(7)).unwrap();
        assert_eq!(rt.invoke(h, "getX", &[]).unwrap().as_i32().unwrap(), 7);
        // Derived has both its own and inherited fields.
        assert!(rt.get_field(h, "y").is_ok());
    }

    #[test]
    fn field_shadowing_uses_subclass_type() {
        let mut rt = Runtime::new();
        let base = TypeDef::class("B", "v")
            .field("v", primitives::INT32)
            .ctor(vec![])
            .build();
        let derived = TypeDef::class("D", "v")
            .extends("B")
            .field("v", primitives::STRING)
            .ctor(vec![])
            .build();
        rt.register_type(base).unwrap();
        rt.register_type(derived).unwrap();
        let h = rt.instantiate(&TypeName::new("D"), &[]).unwrap();
        assert_eq!(rt.get_field(h, "v").unwrap().as_str().unwrap(), "");
    }

    #[test]
    fn set_unknown_field_errors() {
        let (mut rt, _) = runtime_with_person();
        let h = rt.instantiate(&TypeName::new("Person"), &[]).unwrap();
        assert!(matches!(
            rt.set_field(h, "age", Value::I32(1)),
            Err(MetamodelError::UnknownField { .. })
        ));
    }

    #[test]
    fn cannot_instantiate_interface() {
        let mut rt = Runtime::new();
        rt.register_type(TypeDef::interface("I", "v").build())
            .unwrap();
        assert!(matches!(
            rt.instantiate(&TypeName::new("I"), &[]),
            Err(MetamodelError::NotInstantiable(_))
        ));
    }

    #[test]
    fn wrong_ctor_arity_errors() {
        let (mut rt, _) = runtime_with_person();
        assert!(matches!(
            rt.instantiate(&TypeName::new("Person"), &[Value::Null, Value::Null]),
            Err(MetamodelError::UnknownConstructor { .. })
        ));
    }

    #[test]
    fn default_values_by_type() {
        assert_eq!(
            Runtime::default_value(&TypeName::new(primitives::INT32)),
            Value::I32(0)
        );
        assert_eq!(
            Runtime::default_value(&TypeName::new(primitives::BOOL)),
            Value::Bool(false)
        );
        assert_eq!(
            Runtime::default_value(&TypeName::new("Int32[]")),
            Value::Array(vec![])
        );
        assert_eq!(
            Runtime::default_value(&TypeName::new("Person")),
            Value::Null
        );
    }

    #[test]
    fn describe_registered_type() {
        let (rt, _) = runtime_with_person();
        let d = rt.describe(&TypeName::new("Person")).unwrap();
        assert_eq!(d.methods.len(), 2);
        assert!(rt.describe(&TypeName::new("Nope")).is_err());
    }

    #[test]
    fn constant_body() {
        let mut rt = Runtime::new();
        let def = TypeDef::class("K", "v")
            .method("answer", vec![], primitives::INT32)
            .ctor(vec![])
            .build();
        let g = def.guid;
        rt.register_type(def).unwrap();
        rt.register_body(g, "answer", 0, bodies::constant(Value::I32(42)));
        let h = rt.instantiate(&TypeName::new("K"), &[]).unwrap();
        assert_eq!(rt.invoke(h, "answer", &[]).unwrap().as_i32().unwrap(), 42);
    }
}
