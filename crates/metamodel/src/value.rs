//! Runtime values and dynamic objects.
//!
//! Rust has no runtime reflection, so objects exchanged between peers are
//! *dynamic*: a [`DynObject`] is a bag of named field values tagged with
//! the [`Guid`] of its type. This reproduces what the CLR gives the paper
//! for free — the ability to inspect and reconstruct any object's state.

use std::collections::BTreeMap;
use std::fmt;

use crate::guid::Guid;

/// A handle to an object living in a [`Heap`](crate::heap::Heap).
///
/// Handles are generational: using a handle after its object was removed
/// is detected and reported as
/// [`DanglingHandle`](crate::error::MetamodelError::DanglingHandle) rather
/// than silently reading another object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjHandle {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl ObjHandle {
    /// Raw slot index (stable while the object is alive).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Generation counter distinguishing reuses of the same slot.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

impl fmt::Display for ObjHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}.{}", self.index, self.generation)
    }
}

/// A runtime value: the universe of things fields can hold and methods can
/// take or return.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The null reference.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 32-bit integer.
    I32(i32),
    /// A 64-bit integer.
    I64(i64),
    /// A 64-bit float.
    F64(f64),
    /// A string.
    Str(String),
    /// A reference to a heap object.
    Obj(ObjHandle),
    /// An array of values.
    Array(Vec<Value>),
}

impl Value {
    /// Short human-readable kind name, for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "Boolean",
            Value::I32(_) => "Int32",
            Value::I64(_) => "Int64",
            Value::F64(_) => "Float64",
            Value::Str(_) => "String",
            Value::Obj(_) => "object",
            Value::Array(_) => "array",
        }
    }

    /// Extracts a string, or a type-mismatch error.
    pub fn as_str(&self) -> crate::error::Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(mismatch("String", other)),
        }
    }

    /// Extracts a 32-bit integer, or a type-mismatch error.
    pub fn as_i32(&self) -> crate::error::Result<i32> {
        match self {
            Value::I32(v) => Ok(*v),
            other => Err(mismatch("Int32", other)),
        }
    }

    /// Extracts a 64-bit integer, or a type-mismatch error.
    pub fn as_i64(&self) -> crate::error::Result<i64> {
        match self {
            Value::I64(v) => Ok(*v),
            other => Err(mismatch("Int64", other)),
        }
    }

    /// Extracts a float, or a type-mismatch error.
    pub fn as_f64(&self) -> crate::error::Result<f64> {
        match self {
            Value::F64(v) => Ok(*v),
            other => Err(mismatch("Float64", other)),
        }
    }

    /// Extracts a boolean, or a type-mismatch error.
    pub fn as_bool(&self) -> crate::error::Result<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(mismatch("Boolean", other)),
        }
    }

    /// Extracts an object handle, or a type-mismatch error.
    pub fn as_obj(&self) -> crate::error::Result<ObjHandle> {
        match self {
            Value::Obj(h) => Ok(*h),
            other => Err(mismatch("object reference", other)),
        }
    }

    /// Extracts an array slice, or a type-mismatch error.
    pub fn as_array(&self) -> crate::error::Result<&[Value]> {
        match self {
            Value::Array(v) => Ok(v),
            other => Err(mismatch("array", other)),
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

fn mismatch(expected: &str, found: &Value) -> crate::error::MetamodelError {
    crate::error::MetamodelError::TypeMismatch {
        expected: expected.to_string(),
        found: found.kind_name().to_string(),
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<ObjHandle> for Value {
    fn from(v: ObjHandle) -> Self {
        Value::Obj(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Obj(h) => write!(f, "{h}"),
            Value::Array(vs) => {
                f.write_str("[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
        }
    }
}

/// A dynamic object: the runtime state of an instance, tagged with the
/// identity of its type.
#[derive(Debug, Clone, PartialEq)]
pub struct DynObject {
    /// Identity of the object's type.
    pub type_guid: Guid,
    /// Field values, keyed by field name (flattened over the superclass
    /// chain at instantiation time).
    pub fields: BTreeMap<String, Value>,
}

impl DynObject {
    /// Creates an object of the given type identity with no fields set.
    pub fn new(type_guid: Guid) -> DynObject {
        DynObject {
            type_guid,
            fields: BTreeMap::new(),
        }
    }

    /// Reads a field value.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.fields.get(field)
    }

    /// Writes a field value, returning the previous one if present.
    pub fn set(&mut self, field: impl Into<String>, value: Value) -> Option<Value> {
        self.fields.insert(field.into(), value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(3i32).as_i32().unwrap(), 3);
        assert_eq!(Value::from(3i64).as_i64().unwrap(), 3);
        assert_eq!(Value::from(2.5f64).as_f64().unwrap(), 2.5);
        assert!(Value::from(true).as_bool().unwrap());
        assert_eq!(Value::from("hi").as_str().unwrap(), "hi");
        let arr = Value::from(vec![Value::I32(1), Value::I32(2)]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
    }

    #[test]
    fn accessor_mismatch_reports_kinds() {
        let err = Value::I32(1).as_str().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("String"), "{msg}");
        assert!(msg.contains("Int32"), "{msg}");
    }

    #[test]
    fn null_checks() {
        assert!(Value::Null.is_null());
        assert!(!Value::Bool(false).is_null());
        assert!(Value::Null.as_obj().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
        assert_eq!(
            Value::Array(vec![Value::I32(1), Value::Null]).to_string(),
            "[1, null]"
        );
    }

    #[test]
    fn dyn_object_fields() {
        let mut o = DynObject::new(Guid::derive("T", "s"));
        assert!(o.get("name").is_none());
        assert!(o.set("name", Value::from("alice")).is_none());
        assert_eq!(o.get("name").unwrap().as_str().unwrap(), "alice");
        let prev = o.set("name", Value::from("bob")).unwrap();
        assert_eq!(prev.as_str().unwrap(), "alice");
    }
}
