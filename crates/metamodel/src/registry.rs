//! The type registry: every type a runtime knows, indexed by identity and
//! by name.
//!
//! Because peers receive types minted by other publishers, several
//! distinct types (distinct GUIDs) may share one name — the registry keeps
//! all of them and exposes both "first registered" and "all" name lookups.

use std::collections::HashMap;
use std::sync::Arc;

use crate::descriptor::{DescriptionProvider, TypeDescription};
use crate::error::{MetamodelError, Result};
use crate::guid::Guid;
use crate::names::TypeName;
use crate::primitives;
use crate::types::TypeDef;

/// Indexed storage of [`TypeDef`]s.
#[derive(Debug, Clone, Default)]
pub struct TypeRegistry {
    by_guid: HashMap<Guid, Arc<TypeDef>>,
    // Lowercased full name -> guids in registration order.
    by_name: HashMap<String, Vec<Guid>>,
}

fn name_key(name: &TypeName) -> String {
    name.full().to_ascii_lowercase()
}

impl TypeRegistry {
    /// Creates an empty registry (no builtins; see
    /// [`with_builtins`](Self::with_builtins)).
    pub fn new() -> TypeRegistry {
        TypeRegistry::default()
    }

    /// Creates a registry pre-populated with the platform builtins
    /// (primitives and the root `Object`).
    pub fn with_builtins() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        for def in primitives::builtin_defs() {
            r.register(def).expect("builtins are collision-free");
        }
        r
    }

    /// Registers a type definition.
    ///
    /// Re-registering the *identical* definition is a no-op (idempotent —
    /// assemblies may be installed repeatedly).
    ///
    /// # Errors
    /// [`MetamodelError::DuplicateGuid`] if a *different* definition is
    /// already registered under the same GUID.
    pub fn register(&mut self, def: TypeDef) -> Result<()> {
        if let Some(existing) = self.by_guid.get(&def.guid) {
            if **existing == def {
                return Ok(());
            }
            return Err(MetamodelError::DuplicateGuid(def.guid));
        }
        let key = name_key(&def.name);
        self.by_name.entry(key).or_default().push(def.guid);
        self.by_guid.insert(def.guid, Arc::new(def));
        Ok(())
    }

    /// Looks a type up by identity.
    pub fn get(&self, guid: Guid) -> Option<Arc<TypeDef>> {
        self.by_guid.get(&guid).cloned()
    }

    /// Looks a type up by identity, as an error-producing operation.
    pub fn require(&self, guid: Guid) -> Result<Arc<TypeDef>> {
        self.get(guid).ok_or(MetamodelError::UnknownTypeGuid(guid))
    }

    /// Resolves a name to the *first registered* type with that name
    /// (case-insensitive). Array names resolve to their element type's
    /// existence — arrays themselves have no `TypeDef`.
    pub fn resolve(&self, name: &TypeName) -> Option<Arc<TypeDef>> {
        self.by_name
            .get(&name_key(name))
            .and_then(|v| v.first())
            .and_then(|g| self.get(*g))
    }

    /// Resolves a name to *every* registered type with that name.
    pub fn resolve_all(&self, name: &TypeName) -> Vec<Arc<TypeDef>> {
        self.by_name
            .get(&name_key(name))
            .map(|v| v.iter().filter_map(|g| self.get(*g)).collect())
            .unwrap_or_default()
    }

    /// Resolves a name or errors with
    /// [`MetamodelError::UnknownTypeName`].
    pub fn require_name(&self, name: &TypeName) -> Result<Arc<TypeDef>> {
        self.resolve(name)
            .ok_or_else(|| MetamodelError::UnknownTypeName(name.clone()))
    }

    /// Whether a type with this identity is registered.
    pub fn contains(&self, guid: Guid) -> bool {
        self.by_guid.contains_key(&guid)
    }

    /// Whether any type with this name is registered.
    pub fn contains_name(&self, name: &TypeName) -> bool {
        self.by_name.contains_key(&name_key(name))
    }

    /// Number of registered types (including builtins).
    pub fn len(&self) -> usize {
        self.by_guid.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_guid.is_empty()
    }

    /// Iterates over all registered definitions.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<TypeDef>> {
        self.by_guid.values()
    }

    /// Whether `sub` is an *explicit* (nominal) subtype of `sup`:
    /// identical, or reachable from `sub` through superclass/interface
    /// edges by identity-preserving name resolution within this registry.
    ///
    /// This implements the paper's `≼E` (explicit conformance), which the
    /// implicit rule falls back on.
    pub fn is_explicit_subtype(&self, sub: Guid, sup: Guid) -> bool {
        if sub == sup {
            return true;
        }
        let mut stack = vec![sub];
        let mut seen = vec![sub];
        while let Some(g) = stack.pop() {
            let Some(def) = self.get(g) else { continue };
            let mut parents: Vec<TypeName> = def.interfaces.clone();
            if let Some(s) = &def.superclass {
                parents.push(s.clone());
            }
            for p in parents {
                for pd in self.resolve_all(&p) {
                    if pd.guid == sup {
                        return true;
                    }
                    if !seen.contains(&pd.guid) {
                        seen.push(pd.guid);
                        stack.push(pd.guid);
                    }
                }
            }
        }
        false
    }
}

impl DescriptionProvider for TypeRegistry {
    fn describe(&self, name: &TypeName) -> Option<TypeDescription> {
        self.resolve(name).map(|d| TypeDescription::from_def(&d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ParamDef;

    #[test]
    fn builtins_present() {
        let r = TypeRegistry::with_builtins();
        assert!(r.contains_name(&TypeName::new(primitives::INT32)));
        assert!(r.contains_name(&TypeName::new(primitives::OBJECT)));
        assert_eq!(r.len(), primitives::ALL_PRIMITIVES.len() + 1);
    }

    #[test]
    fn register_and_lookup() {
        let mut r = TypeRegistry::with_builtins();
        let def = TypeDef::class("Acme.Person", "a").build();
        let guid = def.guid;
        r.register(def).unwrap();
        assert!(r.contains(guid));
        assert_eq!(r.get(guid).unwrap().name.full(), "Acme.Person");
        assert_eq!(
            r.resolve(&TypeName::new("acme.person")).unwrap().guid,
            guid,
            "name resolution is case-insensitive"
        );
    }

    #[test]
    fn reregistering_identical_is_idempotent() {
        let mut r = TypeRegistry::new();
        let def = TypeDef::class("P", "a").build();
        r.register(def.clone()).unwrap();
        r.register(def).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn conflicting_guid_rejected() {
        let mut r = TypeRegistry::new();
        let a = TypeDef::class("P", "a").build();
        let mut b = TypeDef::class("Q", "b").build();
        b.guid = a.guid;
        r.register(a).unwrap();
        assert!(matches!(
            r.register(b),
            Err(MetamodelError::DuplicateGuid(_))
        ));
    }

    #[test]
    fn homonyms_coexist() {
        let mut r = TypeRegistry::new();
        let a = TypeDef::class("Person", "vendor-a").build();
        let b = TypeDef::class("Person", "vendor-b").build();
        r.register(a.clone()).unwrap();
        r.register(b.clone()).unwrap();
        let all = r.resolve_all(&TypeName::new("Person"));
        assert_eq!(all.len(), 2);
        assert_eq!(
            r.resolve(&TypeName::new("Person")).unwrap().guid,
            a.guid,
            "first registered wins the single-result lookup"
        );
    }

    #[test]
    fn explicit_subtyping_walks_hierarchy() {
        let mut r = TypeRegistry::with_builtins();
        let inamed = TypeDef::interface("INamed", "v")
            .method("getName", vec![], primitives::STRING)
            .build();
        let person = TypeDef::class("Person", "v").implements("INamed").build();
        let employee = TypeDef::class("Employee", "v").extends("Person").build();
        let (ig, pg, eg) = (inamed.guid, person.guid, employee.guid);
        r.register(inamed).unwrap();
        r.register(person).unwrap();
        r.register(employee).unwrap();
        assert!(r.is_explicit_subtype(eg, pg));
        assert!(r.is_explicit_subtype(eg, ig), "transitive through Person");
        assert!(r.is_explicit_subtype(pg, ig));
        assert!(!r.is_explicit_subtype(pg, eg));
        assert!(r.is_explicit_subtype(pg, pg), "reflexive");
    }

    #[test]
    fn explicit_subtyping_handles_cycles() {
        // Malformed hierarchies (A extends B extends A) must not hang.
        let mut r = TypeRegistry::new();
        let a = TypeDef::class("A", "v").extends("B").build();
        let b = TypeDef::class("B", "v").extends("A").build();
        let (ag, bg) = (a.guid, b.guid);
        r.register(a).unwrap();
        r.register(b).unwrap();
        assert!(r.is_explicit_subtype(ag, bg));
        assert!(r.is_explicit_subtype(bg, ag));
        assert!(!r.is_explicit_subtype(ag, Guid::derive("C", "v")));
    }

    #[test]
    fn describe_via_provider() {
        let mut r = TypeRegistry::with_builtins();
        r.register(
            TypeDef::class("P", "a")
                .method(
                    "f",
                    vec![ParamDef::new("x", primitives::INT32)],
                    primitives::VOID,
                )
                .build(),
        )
        .unwrap();
        let d = r.describe(&TypeName::new("P")).unwrap();
        assert_eq!(d.methods.len(), 1);
        assert!(r.describe(&TypeName::new("Nope")).is_none());
    }
}
