//! # pti-metamodel — the runtime type system substrate
//!
//! The paper *Pragmatic Type Interoperability* (Baehni, Eugster, Guerraoui,
//! Altherr; ICDCS 2003) builds on the .NET Common Type System and CLR
//! reflection. Rust has neither a class-based runtime nor reflection, so
//! this crate reconstructs the minimum the paper needs:
//!
//! * a **class/interface/primitive type system** ([`TypeDef`], [`Guid`]
//!   identity, [`TypeRegistry`]),
//! * **dynamic objects** whose state can be inspected and rebuilt
//!   ([`Value`], [`DynObject`], [`Heap`]),
//! * a **runtime** that instantiates types and dispatches invocations to
//!   native method bodies ([`Runtime`], [`Assembly`]),
//! * **introspection** producing the paper's shippable, non-recursive
//!   [`TypeDescription`]s.
//!
//! Everything downstream — conformance rules, serializers, dynamic
//! proxies, the optimistic transport protocol — operates on these types.
//!
//! ## Example
//!
//! ```
//! use pti_metamodel::{Assembly, Runtime, TypeDef, TypeName, Value, ParamDef, primitives, bodies};
//!
//! let person = TypeDef::class("Acme.Person", "vendor-a")
//!     .field("name", primitives::STRING)
//!     .method("getName", vec![], primitives::STRING)
//!     .ctor(vec![ParamDef::new("n", primitives::STRING)])
//!     .build();
//! let guid = person.guid;
//!
//! let asm = Assembly::builder("acme")
//!     .ty(person)
//!     .body(guid, "getName", 0, bodies::getter("name"))
//!     .ctor_body(guid, 1, bodies::ctor_assign(&["name"]))
//!     .build();
//!
//! let mut rt = Runtime::new();
//! asm.install(&mut rt)?;
//! let h = rt.instantiate(&TypeName::new("Acme.Person"), &[Value::from("ada")])?;
//! assert_eq!(rt.invoke(h, "getName", &[])?.as_str()?, "ada");
//! # Ok::<(), pti_metamodel::MetamodelError>(())
//! ```

#![warn(missing_docs)]

mod assembly;
mod descriptor;
mod error;
mod guid;
mod heap;
mod names;
pub mod primitives;
mod registry;
mod runtime;
mod types;
mod value;

pub use assembly::{Assembly, AssemblyBuilder};
pub use descriptor::{
    CtorDesc, DescriptionProvider, EmptyProvider, FieldDesc, MethodDesc, TypeDescription,
};
pub use error::{MetamodelError, Result};
pub use guid::{Guid, ParseGuidError};
pub use heap::Heap;
pub use names::{split_ident_tokens, TypeName};
pub use registry::TypeRegistry;
pub use runtime::{bodies, NativeFn, Runtime, CTOR_NAME};
pub use types::{
    CtorSig, FieldDef, MethodSig, Modifiers, ParamDef, TypeDef, TypeDefBuilder, TypeKind,
};
pub use value::{DynObject, ObjHandle, Value};
