//! Type names and name manipulation helpers.
//!
//! Types are referenced *by name* in type descriptions (the paper keeps
//! descriptions non-recursive: field and argument types appear as names
//! only, Section 5.2). A [`TypeName`] is a dotted full name such as
//! `Acme.Directory.Person`; the trailing segment is the *simple name* used
//! by the name-conformance aspect, and a `[]` suffix denotes an array type.

use std::fmt;

/// A (possibly namespace-qualified) type name, e.g. `Acme.Person` or
/// `Int32[]`.
///
/// `TypeName` is an immutable string wrapper with helpers for the pieces
/// the conformance rules care about: the simple name, the namespace, and
/// array element types.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeName(String);

impl TypeName {
    /// Creates a type name from its dotted full form.
    pub fn new(full: impl Into<String>) -> TypeName {
        TypeName(full.into())
    }

    /// The full dotted name, as given.
    pub fn full(&self) -> &str {
        &self.0
    }

    /// The simple (unqualified) name: everything after the last `.`.
    ///
    /// ```
    /// use pti_metamodel::TypeName;
    /// assert_eq!(TypeName::new("Acme.Directory.Person").simple(), "Person");
    /// assert_eq!(TypeName::new("Person").simple(), "Person");
    /// ```
    pub fn simple(&self) -> &str {
        match self.0.rfind('.') {
            Some(i) => &self.0[i + 1..],
            None => &self.0,
        }
    }

    /// The namespace portion (everything before the last `.`), if any.
    pub fn namespace(&self) -> Option<&str> {
        self.0.rfind('.').map(|i| &self.0[..i])
    }

    /// Whether this name denotes an array type (`T[]`).
    pub fn is_array(&self) -> bool {
        self.0.ends_with("[]")
    }

    /// For an array type `T[]`, the element type name `T`.
    pub fn element(&self) -> Option<TypeName> {
        self.0.strip_suffix("[]").map(|e| TypeName(e.to_string()))
    }

    /// The array type whose elements are `self` (i.e. `self` + `[]`).
    pub fn array_of(&self) -> TypeName {
        TypeName(format!("{}[]", self.0))
    }

    /// Case-insensitive equality of the *full* names — the basic form of
    /// the paper's name-conformance aspect (Levenshtein distance 0,
    /// case-insensitive).
    pub fn eq_ignore_case(&self, other: &TypeName) -> bool {
        self.0.eq_ignore_ascii_case(&other.0)
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TypeName {
    fn from(s: &str) -> Self {
        TypeName::new(s)
    }
}

impl From<String> for TypeName {
    fn from(s: String) -> Self {
        TypeName::new(s)
    }
}

impl AsRef<str> for TypeName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Splits a camelCase / PascalCase / snake_case identifier into lowercase
/// tokens.
///
/// Used by the token-based `NameMatcher` extension in `pti-conformance`
/// (DESIGN.md D1): the paper motivates matching `setName` against
/// `setPersonName`, which exact matching cannot do; token containment can.
///
/// ```
/// use pti_metamodel::split_ident_tokens;
/// assert_eq!(split_ident_tokens("setPersonName"), vec!["set", "person", "name"]);
/// assert_eq!(split_ident_tokens("HTTPServer"), vec!["http", "server"]);
/// assert_eq!(split_ident_tokens("snake_case_id"), vec!["snake", "case", "id"]);
/// ```
pub fn split_ident_tokens(ident: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = ident.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '.' || c == '-' {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            continue;
        }
        if c.is_uppercase() {
            let prev_lower = i > 0 && chars[i - 1].is_lowercase();
            let next_lower = i + 1 < chars.len() && chars[i + 1].is_lowercase();
            // Boundary at lower→Upper, and at the last upper of an
            // acronym run (HTTPServer -> http, server).
            if prev_lower || (next_lower && !cur.is_empty()) {
                tokens.push(std::mem::take(&mut cur));
            }
        }
        cur.extend(c.to_lowercase());
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_and_namespace() {
        let n = TypeName::new("A.B.C");
        assert_eq!(n.simple(), "C");
        assert_eq!(n.namespace(), Some("A.B"));
        let flat = TypeName::new("C");
        assert_eq!(flat.simple(), "C");
        assert_eq!(flat.namespace(), None);
    }

    #[test]
    fn array_names() {
        let n = TypeName::new("Int32[]");
        assert!(n.is_array());
        assert_eq!(n.element().unwrap().full(), "Int32");
        assert_eq!(TypeName::new("Int32").array_of().full(), "Int32[]");
        assert!(!TypeName::new("Int32").is_array());
        assert_eq!(TypeName::new("Int32").element(), None);
    }

    #[test]
    fn nested_array_names() {
        let n = TypeName::new("Int32[][]");
        assert!(n.is_array());
        assert_eq!(n.element().unwrap().full(), "Int32[]");
    }

    #[test]
    fn case_insensitive_equality() {
        assert!(TypeName::new("person").eq_ignore_case(&TypeName::new("PERSON")));
        assert!(!TypeName::new("person").eq_ignore_case(&TypeName::new("human")));
    }

    #[test]
    fn token_split_basic() {
        assert_eq!(split_ident_tokens("getName"), vec!["get", "name"]);
        assert_eq!(
            split_ident_tokens("getPersonName"),
            vec!["get", "person", "name"]
        );
    }

    #[test]
    fn token_split_acronyms_and_digits() {
        assert_eq!(
            split_ident_tokens("parseXMLDoc"),
            vec!["parse", "xml", "doc"]
        );
        assert_eq!(split_ident_tokens("v2Engine"), vec!["v2", "engine"]);
    }

    #[test]
    fn token_split_empty() {
        assert!(split_ident_tokens("").is_empty());
        assert!(split_ident_tokens("___").is_empty());
    }

    #[test]
    fn display_and_from() {
        let n: TypeName = "X.Y".into();
        assert_eq!(n.to_string(), "X.Y");
        let n2: TypeName = String::from("Z").into();
        assert_eq!(n2.as_ref(), "Z");
    }
}
