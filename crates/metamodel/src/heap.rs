//! A generational object heap.
//!
//! Objects live in slots; freed slots are recycled with a bumped
//! generation so stale [`ObjHandle`]s are detected instead of aliasing a
//! new object.

use crate::error::{MetamodelError, Result};
use crate::value::{DynObject, ObjHandle};

/// Slab-style storage for [`DynObject`]s with generational handles.
#[derive(Debug, Default)]
pub struct Heap {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    object: Option<DynObject>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the heap holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Allocates an object, returning its handle.
    pub fn alloc(&mut self, object: DynObject) -> ObjHandle {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.object = Some(object);
            ObjHandle {
                index,
                generation: slot.generation,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                object: Some(object),
            });
            ObjHandle {
                index,
                generation: 0,
            }
        }
    }

    /// Reads an object.
    ///
    /// # Errors
    /// [`MetamodelError::DanglingHandle`] if the handle is stale.
    pub fn get(&self, handle: ObjHandle) -> Result<&DynObject> {
        self.slot(handle)?
            .object
            .as_ref()
            .ok_or(MetamodelError::DanglingHandle)
    }

    /// Mutably reads an object.
    ///
    /// # Errors
    /// [`MetamodelError::DanglingHandle`] if the handle is stale.
    pub fn get_mut(&mut self, handle: ObjHandle) -> Result<&mut DynObject> {
        let slot = self
            .slots
            .get_mut(handle.index as usize)
            .filter(|s| s.generation == handle.generation)
            .ok_or(MetamodelError::DanglingHandle)?;
        slot.object.as_mut().ok_or(MetamodelError::DanglingHandle)
    }

    /// Frees an object, invalidating its handle.
    ///
    /// # Errors
    /// [`MetamodelError::DanglingHandle`] if the handle is already stale.
    pub fn free(&mut self, handle: ObjHandle) -> Result<DynObject> {
        let slot = self
            .slots
            .get_mut(handle.index as usize)
            .filter(|s| s.generation == handle.generation)
            .ok_or(MetamodelError::DanglingHandle)?;
        let obj = slot.object.take().ok_or(MetamodelError::DanglingHandle)?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.live -= 1;
        Ok(obj)
    }

    fn slot(&self, handle: ObjHandle) -> Result<&Slot> {
        self.slots
            .get(handle.index as usize)
            .filter(|s| s.generation == handle.generation)
            .ok_or(MetamodelError::DanglingHandle)
    }

    /// Iterates over all live objects and their handles.
    pub fn iter(&self) -> impl Iterator<Item = (ObjHandle, &DynObject)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.object.as_ref().map(|o| {
                (
                    ObjHandle {
                        index: i as u32,
                        generation: s.generation,
                    },
                    o,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guid::Guid;
    use crate::value::Value;

    fn obj(tag: &str) -> DynObject {
        let mut o = DynObject::new(Guid::derive(tag, "t"));
        o.set("tag", Value::from(tag));
        o
    }

    #[test]
    fn alloc_get_roundtrip() {
        let mut h = Heap::new();
        let a = h.alloc(obj("a"));
        let b = h.alloc(obj("b"));
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(a).unwrap().get("tag").unwrap().as_str().unwrap(), "a");
        assert_eq!(h.get(b).unwrap().get("tag").unwrap().as_str().unwrap(), "b");
    }

    #[test]
    fn free_invalidates_handle() {
        let mut h = Heap::new();
        let a = h.alloc(obj("a"));
        h.free(a).unwrap();
        assert!(h.get(a).is_err());
        assert!(h.free(a).is_err());
        assert!(h.is_empty());
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut h = Heap::new();
        let a = h.alloc(obj("a"));
        h.free(a).unwrap();
        let b = h.alloc(obj("b"));
        assert_eq!(a.index(), b.index());
        assert_ne!(a.generation(), b.generation());
        assert!(h.get(a).is_err());
        assert!(h.get(b).is_ok());
    }

    #[test]
    fn get_mut_mutates() {
        let mut h = Heap::new();
        let a = h.alloc(obj("a"));
        h.get_mut(a).unwrap().set("tag", Value::from("z"));
        assert_eq!(h.get(a).unwrap().get("tag").unwrap().as_str().unwrap(), "z");
    }

    #[test]
    fn iter_visits_live_only() {
        let mut h = Heap::new();
        let a = h.alloc(obj("a"));
        let _b = h.alloc(obj("b"));
        h.free(a).unwrap();
        let tags: Vec<String> = h
            .iter()
            .map(|(_, o)| o.get("tag").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(tags, vec!["b"]);
    }
}
