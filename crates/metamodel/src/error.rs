//! Error types for the metamodel runtime.

use std::fmt;

use crate::guid::Guid;
use crate::names::TypeName;

/// Errors raised by the metamodel runtime ([`Runtime`](crate::runtime::Runtime)
/// and its supporting structures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetamodelError {
    /// A type was looked up by name but is not registered.
    UnknownTypeName(TypeName),
    /// A type was looked up by GUID but is not registered.
    UnknownTypeGuid(Guid),
    /// A second, different type was registered under an existing GUID.
    DuplicateGuid(Guid),
    /// A field was accessed that does not exist on the object's type.
    UnknownField {
        /// The type on which the lookup was attempted.
        ty: TypeName,
        /// The missing field name.
        field: String,
    },
    /// A method was invoked that does not exist on the object's type
    /// (searching the full superclass chain).
    UnknownMethod {
        /// The type on which the lookup was attempted.
        ty: TypeName,
        /// The missing method name.
        method: String,
        /// Number of arguments the caller supplied.
        arity: usize,
    },
    /// A method exists in the type definition but no native body was
    /// installed for it (the "assembly" with the code was never loaded).
    MissingBody {
        /// The type declaring the method.
        ty: TypeName,
        /// The method whose body is missing.
        method: String,
    },
    /// No constructor with the given arity exists on the type.
    UnknownConstructor {
        /// The type being instantiated.
        ty: TypeName,
        /// Number of arguments the caller supplied.
        arity: usize,
    },
    /// An object handle is stale (the object was collected) or malformed.
    DanglingHandle,
    /// A value had a different runtime kind than the operation expected.
    TypeMismatch {
        /// What the operation expected (human readable).
        expected: String,
        /// What it actually found (human readable).
        found: String,
    },
    /// Instantiating an interface or abstract class.
    NotInstantiable(TypeName),
    /// A native method body raised an application-level error.
    Native(String),
}

impl fmt::Display for MetamodelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTypeName(n) => write!(f, "unknown type name `{n}`"),
            Self::UnknownTypeGuid(g) => write!(f, "unknown type guid {g}"),
            Self::DuplicateGuid(g) => {
                write!(f, "a different type is already registered under guid {g}")
            }
            Self::UnknownField { ty, field } => write!(f, "type `{ty}` has no field `{field}`"),
            Self::UnknownMethod { ty, method, arity } => {
                write!(
                    f,
                    "type `{ty}` has no method `{method}` taking {arity} argument(s)"
                )
            }
            Self::MissingBody { ty, method } => {
                write!(
                    f,
                    "no native body installed for `{ty}::{method}` (assembly not loaded?)"
                )
            }
            Self::UnknownConstructor { ty, arity } => {
                write!(
                    f,
                    "type `{ty}` has no constructor taking {arity} argument(s)"
                )
            }
            Self::DanglingHandle => write!(f, "dangling object handle"),
            Self::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Self::NotInstantiable(n) => write!(f, "type `{n}` is not instantiable"),
            Self::Native(msg) => write!(f, "native method error: {msg}"),
        }
    }
}

impl std::error::Error for MetamodelError {}

/// Convenient result alias used throughout the metamodel.
pub type Result<T> = std::result::Result<T, MetamodelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_type() {
        let e = MetamodelError::UnknownTypeName(TypeName::new("Acme.Person"));
        assert_eq!(e.to_string(), "unknown type name `Acme.Person`");
    }

    #[test]
    fn display_unknown_method() {
        let e = MetamodelError::UnknownMethod {
            ty: TypeName::new("Person"),
            method: "getName".into(),
            arity: 2,
        };
        assert!(e.to_string().contains("getName"));
        assert!(e.to_string().contains("2 argument(s)"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&MetamodelError::DanglingHandle);
    }
}
