//! Type descriptions — the paper's `TypeDescription` / `ITypeDescription`
//! (Section 5).
//!
//! A [`TypeDescription`] is the *shippable* reflection of a type: enough
//! structure to run the conformance rules, but deliberately
//! **non-recursive** — field and argument types are referenced by name
//! only, "(1) for saving time during the creation of the XML message and
//! (2) for keeping this message small" (Section 5.2). When a rule needs the
//! structure of a referenced type, it asks a [`DescriptionProvider`].

use crate::guid::Guid;
use crate::names::TypeName;
use crate::types::{Modifiers, TypeDef, TypeKind};

/// Description of a field: name and type name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldDesc {
    /// Field name.
    pub name: String,
    /// Field type, by name.
    pub ty: TypeName,
    /// Field modifiers.
    pub modifiers: Modifiers,
}

/// Description of a method: name, parameter type names, return type name
/// and modifiers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodDesc {
    /// Method name.
    pub name: String,
    /// Parameter types, by name, in declaration order.
    pub params: Vec<TypeName>,
    /// Return type, by name.
    pub return_type: TypeName,
    /// Method modifiers.
    pub modifiers: Modifiers,
}

impl MethodDesc {
    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// Description of a constructor: parameter type names and modifiers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CtorDesc {
    /// Parameter types, by name, in declaration order.
    pub params: Vec<TypeName>,
    /// Constructor modifiers.
    pub modifiers: Modifiers,
}

impl CtorDesc {
    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// The non-recursive, serializable description of a type.
///
/// This is what peers exchange *instead of* code: cheap to produce via
/// introspection, cheap to ship as XML, sufficient for conformance
/// checking. Produced from a [`TypeDef`] by [`TypeDescription::from_def`]
/// (our stand-in for CLR reflection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDescription {
    /// Full type name.
    pub name: TypeName,
    /// Platform identity of the type.
    pub guid: Guid,
    /// Class / interface / primitive.
    pub kind: TypeKind,
    /// Type modifiers.
    pub modifiers: Modifiers,
    /// Superclass, by name.
    pub superclass: Option<TypeName>,
    /// Implemented interfaces, by name.
    pub interfaces: Vec<TypeName>,
    /// Declared fields.
    pub fields: Vec<FieldDesc>,
    /// Declared methods.
    pub methods: Vec<MethodDesc>,
    /// Declared constructors.
    pub constructors: Vec<CtorDesc>,
}

impl TypeDescription {
    /// Introspects a [`TypeDef`] into its description.
    ///
    /// This is the moral equivalent of the paper's use of .NET reflection
    /// to build `TypeDescription` instances.
    pub fn from_def(def: &TypeDef) -> TypeDescription {
        TypeDescription {
            name: def.name.clone(),
            guid: def.guid,
            kind: def.kind,
            modifiers: def.modifiers,
            superclass: def.superclass.clone(),
            interfaces: def.interfaces.clone(),
            fields: def
                .fields
                .iter()
                .map(|f| FieldDesc {
                    name: f.name.clone(),
                    ty: f.ty.clone(),
                    modifiers: f.modifiers,
                })
                .collect(),
            methods: def
                .methods
                .iter()
                .map(|m| MethodDesc {
                    name: m.name.clone(),
                    params: m.params.iter().map(|p| p.ty.clone()).collect(),
                    return_type: m.return_type.clone(),
                    modifiers: m.modifiers,
                })
                .collect(),
            constructors: def
                .constructors
                .iter()
                .map(|c| CtorDesc {
                    params: c.params.iter().map(|p| p.ty.clone()).collect(),
                    modifiers: c.modifiers,
                })
                .collect(),
        }
    }

    /// The paper's `equals()`: identity comparison via platform GUIDs.
    pub fn equals(&self, other: &TypeDescription) -> bool {
        self.guid == other.guid
    }

    /// Structural equality ignoring identity: same name (case-insensitive)
    /// and member-for-member identical structure. This is the paper's type
    /// *equivalence* (definition 3): two types that are indistinguishable
    /// by structure even though minted by different publishers.
    pub fn equivalent(&self, other: &TypeDescription) -> bool {
        self.name.eq_ignore_case(&other.name)
            && self.kind == other.kind
            && self.modifiers == other.modifiers
            && self.superclass == other.superclass
            && self.interfaces == other.interfaces
            && self.fields == other.fields
            && self.methods == other.methods
            && self.constructors == other.constructors
    }

    /// Every type name this description references (supertypes, field
    /// types, parameter and return types) — the set a conformance check
    /// may need to resolve through a [`DescriptionProvider`].
    pub fn referenced_types(&self) -> Vec<TypeName> {
        let mut out = Vec::new();
        if let Some(s) = &self.superclass {
            out.push(s.clone());
        }
        out.extend(self.interfaces.iter().cloned());
        out.extend(self.fields.iter().map(|f| f.ty.clone()));
        for m in &self.methods {
            out.extend(m.params.iter().cloned());
            out.push(m.return_type.clone());
        }
        for c in &self.constructors {
            out.extend(c.params.iter().cloned());
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Resolves type names to descriptions.
///
/// Conformance checking of a description may require descriptions of the
/// types it references (field types, argument types, supertypes). In a
/// running peer the provider is backed by the local registry plus whatever
/// descriptions were downloaded from remote hosts.
pub trait DescriptionProvider {
    /// Returns the description registered under `name`, if any.
    fn describe(&self, name: &TypeName) -> Option<TypeDescription>;
}

/// A provider with no descriptions at all; useful in tests and for
/// primitive-only types.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyProvider;

impl DescriptionProvider for EmptyProvider {
    fn describe(&self, _name: &TypeName) -> Option<TypeDescription> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;
    use crate::types::ParamDef;

    fn person(salt: &str) -> TypeDef {
        TypeDef::class("Person", salt)
            .field("name", primitives::STRING)
            .method("getName", vec![], primitives::STRING)
            .method(
                "setName",
                vec![ParamDef::new("n", primitives::STRING)],
                primitives::VOID,
            )
            .ctor(vec![ParamDef::new("n", primitives::STRING)])
            .build()
    }

    #[test]
    fn from_def_captures_structure() {
        let d = TypeDescription::from_def(&person("a"));
        assert_eq!(d.name.full(), "Person");
        assert_eq!(d.fields.len(), 1);
        assert_eq!(d.methods.len(), 2);
        assert_eq!(d.methods[1].params, vec![TypeName::new(primitives::STRING)]);
        assert_eq!(d.constructors[0].arity(), 1);
    }

    #[test]
    fn equals_is_identity() {
        let a = TypeDescription::from_def(&person("a"));
        let a2 = TypeDescription::from_def(&person("a"));
        let b = TypeDescription::from_def(&person("b"));
        assert!(a.equals(&a2));
        assert!(!a.equals(&b), "different salts mint different identities");
    }

    #[test]
    fn equivalent_ignores_identity() {
        let a = TypeDescription::from_def(&person("a"));
        let b = TypeDescription::from_def(&person("b"));
        assert!(a.equivalent(&b));
        assert!(!a.equals(&b));
    }

    #[test]
    fn equivalent_is_structural() {
        let a = TypeDescription::from_def(&person("a"));
        let other = TypeDescription::from_def(
            &TypeDef::class("Person", "c")
                .field("name", primitives::STRING)
                .method("getName", vec![], primitives::STRING)
                .build(),
        );
        assert!(!a.equivalent(&other), "missing members break equivalence");
    }

    #[test]
    fn referenced_types_deduplicated() {
        let d = TypeDescription::from_def(&person("a"));
        let refs = d.referenced_types();
        assert!(refs.contains(&TypeName::new(primitives::STRING)));
        assert!(refs.contains(&TypeName::new(primitives::VOID)));
        assert!(refs.contains(&TypeName::new(primitives::OBJECT)));
        let mut sorted = refs.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), refs.len(), "no duplicates");
    }

    #[test]
    fn empty_provider_is_empty() {
        assert!(EmptyProvider.describe(&TypeName::new("X")).is_none());
    }
}
