//! Assemblies: deployable bundles of type definitions plus code.
//!
//! The paper's protocol distinguishes a type's *description* (cheap,
//! shipped eagerly on demand) from its *code* (the .NET assembly,
//! downloaded only after a successful conformance check). An [`Assembly`]
//! models the latter: definitions plus native method bodies plus a
//! simulated on-the-wire size, installable into a [`Runtime`].

use std::sync::Arc;

use crate::error::Result;
use crate::guid::Guid;
use crate::runtime::{NativeFn, Runtime, CTOR_NAME};
use crate::types::TypeDef;

/// Rough per-item constants for the simulated wire size of an assembly.
/// Real assemblies carry IL, metadata tables and resources; we charge a
/// fixed overhead plus a per-member cost so bigger types cost more to
/// download — which is all the protocol experiments need.
const BASE_BYTES: usize = 2048;
const PER_TYPE_BYTES: usize = 512;
const PER_MEMBER_BYTES: usize = 96;
const PER_BODY_BYTES: usize = 160;

/// A named, installable bundle of types and method bodies.
#[derive(Clone)]
pub struct Assembly {
    name: String,
    types: Vec<TypeDef>,
    bodies: Vec<(Guid, String, usize, NativeFn)>,
}

impl std::fmt::Debug for Assembly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Assembly")
            .field("name", &self.name)
            .field(
                "types",
                &self.types.iter().map(|t| t.name.full()).collect::<Vec<_>>(),
            )
            .field("bodies", &self.bodies.len())
            .field("byte_size", &self.byte_size())
            .finish()
    }
}

impl Assembly {
    /// Starts building an assembly with the given name.
    pub fn builder(name: impl Into<String>) -> AssemblyBuilder {
        AssemblyBuilder {
            asm: Assembly {
                name: name.into(),
                types: Vec::new(),
                bodies: Vec::new(),
            },
        }
    }

    /// The assembly name (also used as its default download-path stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The type definitions bundled in this assembly.
    pub fn types(&self) -> &[TypeDef] {
        &self.types
    }

    /// Number of native bodies bundled.
    pub fn body_count(&self) -> usize {
        self.bodies.len()
    }

    /// Simulated on-the-wire size in bytes.
    ///
    /// Deterministic in the assembly's structure, so experiments comparing
    /// protocol variants charge identical costs for identical assemblies.
    pub fn byte_size(&self) -> usize {
        let members: usize = self
            .types
            .iter()
            .map(|t| t.fields.len() + t.methods.len() + t.constructors.len() + t.interfaces.len())
            .sum();
        BASE_BYTES
            + PER_TYPE_BYTES * self.types.len()
            + PER_MEMBER_BYTES * members
            + PER_BODY_BYTES * self.bodies.len()
    }

    /// A stable identity for the assembly's *content*: its name plus the
    /// identities of the types it bundles. Two peers that installed the
    /// same assembly under different download paths recognize each other's
    /// references through this hash.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.name.as_bytes());
        let mut guids: Vec<Guid> = self.types.iter().map(|t| t.guid).collect();
        guids.sort_unstable();
        for g in guids {
            mix(&g.to_bytes());
        }
        h
    }

    /// Installs every type and body into the runtime.
    ///
    /// Idempotent: re-installing the same assembly is allowed (types are
    /// deduplicated by identity, bodies overwritten with identical code).
    ///
    /// # Errors
    /// Propagates registry errors (e.g. a *different* type already
    /// registered under one of the bundled GUIDs).
    pub fn install(&self, rt: &mut Runtime) -> Result<()> {
        for t in &self.types {
            rt.register_type(t.clone())?;
        }
        for (guid, method, arity, body) in &self.bodies {
            rt.register_body(*guid, method.clone(), *arity, Arc::clone(body));
        }
        Ok(())
    }
}

/// Fluent builder for [`Assembly`].
pub struct AssemblyBuilder {
    asm: Assembly,
}

impl AssemblyBuilder {
    /// Bundles a type definition.
    #[must_use]
    pub fn ty(mut self, def: TypeDef) -> Self {
        self.asm.types.push(def);
        self
    }

    /// Bundles a method body for `guid::method/arity`.
    #[must_use]
    pub fn body(
        mut self,
        guid: Guid,
        method: impl Into<String>,
        arity: usize,
        body: NativeFn,
    ) -> Self {
        self.asm.bodies.push((guid, method.into(), arity, body));
        self
    }

    /// Bundles a constructor body for `guid` with the given arity.
    #[must_use]
    pub fn ctor_body(self, guid: Guid, arity: usize, body: NativeFn) -> Self {
        self.body(guid, CTOR_NAME, arity, body)
    }

    /// Finishes the build.
    pub fn build(self) -> Assembly {
        self.asm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::TypeName;
    use crate::primitives;
    use crate::runtime::bodies;
    use crate::types::ParamDef;
    use crate::value::Value;

    fn person_assembly() -> Assembly {
        let def = TypeDef::class("Person", "vendor-a")
            .field("name", primitives::STRING)
            .method("getName", vec![], primitives::STRING)
            .method(
                "setName",
                vec![ParamDef::new("n", primitives::STRING)],
                primitives::VOID,
            )
            .ctor(vec![ParamDef::new("n", primitives::STRING)])
            .build();
        let g = def.guid;
        Assembly::builder("acme-person")
            .ty(def)
            .body(g, "getName", 0, bodies::getter("name"))
            .body(g, "setName", 1, bodies::setter("name"))
            .ctor_body(g, 1, bodies::ctor_assign(&["name"]))
            .build()
    }

    #[test]
    fn install_makes_type_usable() {
        let mut rt = Runtime::new();
        person_assembly().install(&mut rt).unwrap();
        let h = rt
            .instantiate(&TypeName::new("Person"), &[Value::from("ada")])
            .unwrap();
        assert_eq!(
            rt.invoke(h, "getName", &[]).unwrap().as_str().unwrap(),
            "ada"
        );
    }

    #[test]
    fn install_is_idempotent() {
        let mut rt = Runtime::new();
        let asm = person_assembly();
        asm.install(&mut rt).unwrap();
        asm.install(&mut rt).unwrap();
        assert!(rt.registry.contains_name(&TypeName::new("Person")));
    }

    #[test]
    fn byte_size_grows_with_structure() {
        let small = Assembly::builder("s")
            .ty(TypeDef::class("A", "v").build())
            .build();
        let big = Assembly::builder("b")
            .ty(TypeDef::class("B", "v")
                .field("f1", primitives::INT32)
                .field("f2", primitives::INT32)
                .method("m", vec![], primitives::VOID)
                .build())
            .build();
        assert!(big.byte_size() > small.byte_size());
        assert_eq!(big.byte_size(), big.clone().byte_size(), "deterministic");
    }

    #[test]
    fn debug_lists_types() {
        let asm = person_assembly();
        let dbg = format!("{asm:?}");
        assert!(dbg.contains("Person"));
        assert!(dbg.contains("acme-person"));
    }
}
