//! Property tests for the metamodel substrate: the heap against a model,
//! GUID parsing, registry invariants, and runtime robustness.

// Gated: requires the external `proptest` crate, which is not
// available in this build environment. Enable the feature after
// adding the dependency to this crate.
#![cfg(feature = "proptest-tests")]

use std::collections::HashMap;

use proptest::prelude::*;
use pti_metamodel::{DynObject, Guid, Heap, ParamDef, Runtime, TypeDef, TypeName, Value};

// ---------------------------------------------------------------------
// Heap vs a HashMap model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum HeapOp {
    Alloc(u8),
    Free(usize),
    Get(usize),
    Mutate(usize, u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(HeapOp::Alloc),
            (0usize..32).prop_map(HeapOp::Free),
            (0usize..32).prop_map(HeapOp::Get),
            ((0usize..32), any::<u8>()).prop_map(|(i, v)| HeapOp::Mutate(i, v)),
        ],
        0..64,
    )
}

proptest! {
    /// The generational heap behaves exactly like a map keyed by live
    /// handles: frees invalidate, reuse never aliases, reads see writes.
    #[test]
    fn heap_matches_model(ops in arb_ops()) {
        let mut heap = Heap::new();
        let mut model: HashMap<usize, u8> = HashMap::new();
        let mut handles = Vec::new();
        let guid = Guid::derive("M", "model");
        for op in ops {
            match op {
                HeapOp::Alloc(tag) => {
                    let mut o = DynObject::new(guid);
                    o.set("tag", Value::I32(i32::from(tag)));
                    let h = heap.alloc(o);
                    handles.push(h);
                    model.insert(handles.len() - 1, tag);
                }
                HeapOp::Free(i) => {
                    if let Some(h) = handles.get(i).copied() {
                        let live = model.contains_key(&i);
                        prop_assert_eq!(heap.free(h).is_ok(), live);
                        model.remove(&i);
                    }
                }
                HeapOp::Get(i) => {
                    if let Some(h) = handles.get(i).copied() {
                        match model.get(&i) {
                            Some(tag) => {
                                let got = heap.get(h).expect("live");
                                prop_assert_eq!(
                                    got.get("tag").unwrap().as_i32().unwrap(),
                                    i32::from(*tag)
                                );
                            }
                            None => prop_assert!(heap.get(h).is_err(), "stale handle"),
                        }
                    }
                }
                HeapOp::Mutate(i, v) => {
                    if let Some(h) = handles.get(i).copied() {
                        if model.contains_key(&i) {
                            heap.get_mut(h).unwrap().set("tag", Value::I32(i32::from(v)));
                            model.insert(i, v);
                        } else {
                            prop_assert!(heap.get_mut(h).is_err());
                        }
                    }
                }
            }
            prop_assert_eq!(heap.len(), model.len());
        }
    }

    // -------------------------------------------------------------------
    // GUIDs
    // -------------------------------------------------------------------

    #[test]
    fn guid_display_parse_roundtrip(v in any::<u128>()) {
        let g = Guid(v);
        prop_assert_eq!(g.to_string().parse::<Guid>().unwrap(), g);
        prop_assert_eq!(Guid::from_bytes(g.to_bytes()), g);
    }

    #[test]
    fn guid_parse_never_panics(s in "\\PC{0,40}") {
        let _ = s.parse::<Guid>();
    }

    #[test]
    fn guid_derivation_injective_in_practice(
        a in "[a-zA-Z0-9.]{1,20}", b in "[a-zA-Z0-9.]{1,20}"
    ) {
        // Not a theorem (it's a hash), but collisions on short names
        // would break the whole identity story — catch regressions.
        prop_assume!(a != b);
        prop_assert_ne!(Guid::derive(&a, "s"), Guid::derive(&b, "s"));
    }

    // -------------------------------------------------------------------
    // Registry + runtime robustness
    // -------------------------------------------------------------------

    #[test]
    fn registry_resolution_case_insensitive(name in "[A-Za-z][A-Za-z0-9]{0,12}") {
        let mut rt = Runtime::new();
        prop_assume!(!pti_metamodel::primitives::is_builtin(&TypeName::new(name.clone())));
        let def = TypeDef::class(name.clone(), "prop").ctor(vec![]).build();
        rt.register_type(def.clone()).unwrap();
        let upper = TypeName::new(name.to_uppercase());
        let lower = TypeName::new(name.to_lowercase());
        prop_assert_eq!(rt.registry.resolve(&upper).unwrap().guid, def.guid);
        prop_assert_eq!(rt.registry.resolve(&lower).unwrap().guid, def.guid);
    }

    #[test]
    fn invoke_arbitrary_method_names_never_panics(m in "\\PC{0,16}") {
        let mut rt = Runtime::new();
        let def = TypeDef::class("T", "prop")
            .method("real", vec![], pti_metamodel::primitives::VOID)
            .ctor(vec![])
            .build();
        rt.register_type(def).unwrap();
        let h = rt.instantiate(&"T".into(), &[]).unwrap();
        let _ = rt.invoke(h, &m, &[]);
        let _ = rt.get_field(h, &m);
        let _ = rt.set_field(h, &m, Value::Null);
    }

    #[test]
    fn instantiate_with_wrong_arity_never_panics(n in 0usize..6) {
        let mut rt = Runtime::new();
        let def = TypeDef::class("T", "prop")
            .ctor(vec![ParamDef::new("a", pti_metamodel::primitives::INT32)])
            .build();
        rt.register_type(def).unwrap();
        let args = vec![Value::I32(1); n];
        let r = rt.instantiate(&"T".into(), &args);
        prop_assert_eq!(r.is_ok(), n == 1);
    }
}
